"""Build simulated FPGA clusters mirroring the evaluation testbed (§5).

``build_fpga_cluster(8, protocol="rdma", platform="coyote")`` reproduces the
paper's main configuration: Alveo-U55C-class nodes on a 100 Gb/s star
fabric, with sessions/queue pairs exchanged up front (the CCL driver's POE
initialization duty).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import ConfigurationError
from repro.cclo.config_mem import CcloConfig, CommunicatorConfig
from repro.cclo.engine import CcloEngine
from repro.cclo.microcontroller import CollectiveArgs
from repro.cluster.node import FpgaNode
from repro.network.topology import StarTopology
from repro.obs.runtime import auto_attach
from repro.platform.coyote import CoyotePlatform
from repro.platform.simplatform import SimPlatform
from repro.platform.vitis import VitisPlatform
from repro.protocols.rdma import RdmaPoe
from repro.protocols.tcp import TcpPoe
from repro.protocols.udp import UdpPoe
from repro.sim import Environment, all_of
from repro import units

_PLATFORMS = {
    "coyote": CoyotePlatform,
    "vitis": VitisPlatform,
    "sim": SimPlatform,
}

_POES = {
    "rdma": RdmaPoe,
    "tcp": TcpPoe,
    "udp": UdpPoe,
}


class FpgaCluster:
    """N FPGA nodes on one switch, sharing communicator 0."""

    def __init__(
        self,
        env: Environment,
        nodes: List[FpgaNode],
        topology: StarTopology,
        protocol: str,
    ):
        self.env = env
        self.nodes = nodes
        self.topology = topology
        self.protocol = protocol

    @property
    def size(self) -> int:
        return len(self.nodes)

    def engine(self, rank: int) -> CcloEngine:
        return self.nodes[rank].engine

    def add_subcommunicator(self, comm_id: int, ranks: List[int]) -> None:
        """Configure a communicator over a subset of the cluster's nodes.

        ``ranks`` are cluster ranks; inside the new communicator they are
        renumbered 0..len-1 in the given order (MPI sub-communicator style).
        """
        addresses = [self.nodes[r].address for r in ranks]
        for sub_rank, r in enumerate(ranks):
            self.nodes[r].engine.add_communicator(
                CommunicatorConfig(
                    comm_id=comm_id,
                    local_rank=sub_rank,
                    addresses=addresses,
                    protocol=self.protocol,
                )
            )

    def call_on_all(
        self, make_args: Callable[[int], Optional[CollectiveArgs]]
    ) -> list:
        """Submit one command per rank; returns the completion events.

        ``make_args(rank)`` may return ``None`` to skip a rank.
        """
        events = []
        for node in self.nodes:
            args = make_args(node.rank)
            if args is not None:
                events.append(node.engine.call(args))
        return events

    def run_collective(
        self, make_args: Callable[[int], Optional[CollectiveArgs]]
    ) -> float:
        """Run one collective across the cluster; returns elapsed seconds."""
        start = self.env.now
        events = self.call_on_all(make_args)
        self.env.run(until=all_of(self.env, events))
        return self.env.now - start


#: Node count at or above which ``peering="auto"`` defers RDMA queue-pair
#: creation to first use.  QP exchange is a zero-sim-time control-plane
#: step, so lazy creation is timing-identical; eager all-pairs setup is
#: kept on small clusters purely because it front-loads configuration
#: errors (the historical behaviour every existing test observes).
LAZY_PEERING_THRESHOLD = 64


def build_fpga_cluster(
    n_nodes: int,
    protocol: str = "rdma",
    platform: str = "coyote",
    cclo_config: Optional[CcloConfig] = None,
    env: Optional[Environment] = None,
    link_rate: float = units.gbps(100),
    topology_factory: Optional[Callable[[Environment], object]] = None,
    peering: str = "auto",
) -> FpgaCluster:
    """Construct an ``n_nodes`` cluster with communicator 0 ready to use.

    Session establishment (TCP) and queue-pair exchange (RDMA) are
    performed the way the host CCL driver initializes POEs before any
    collective runs.  ``peering`` controls the RDMA side: ``"eager"``
    creates all n*(n-1) queue pairs up front, ``"lazy"`` creates each QP at
    its first verb (timing-identical — QP exchange charges no simulated
    time — but O(active peers) in memory), and ``"auto"`` switches to lazy
    at ``LAZY_PEERING_THRESHOLD`` nodes.  TCP handshakes advance simulated
    time and always run eagerly.
    """
    if n_nodes < 1:
        raise ConfigurationError(f"cluster needs at least 1 node, got {n_nodes}")
    if protocol not in _POES:
        raise ConfigurationError(f"unknown protocol {protocol!r}")
    if platform not in _PLATFORMS:
        raise ConfigurationError(f"unknown platform {platform!r}")
    if peering not in ("auto", "eager", "lazy"):
        raise ConfigurationError(f"unknown peering mode {peering!r}")

    env = env or Environment()
    if topology_factory is not None:
        topology = topology_factory(env)
    else:
        topology = StarTopology(env, link_rate=link_rate)
    platform_cls = _PLATFORMS[platform]
    poe_cls = _POES[protocol]
    # One read-only config object for the whole cluster: every engine's
    # ConfigMemory references it instead of instantiating a private copy.
    if cclo_config is None:
        cclo_config = CcloConfig()

    nodes: List[FpgaNode] = []
    for rank in range(n_nodes):
        endpoint = topology.add_endpoint(rank, name=f"fpga{rank}")
        plat = platform_cls(env)
        poe = poe_cls(env, endpoint)
        engine = CcloEngine(env, plat, poe, config=cclo_config,
                            name=f"cclo{rank}")
        nodes.append(FpgaNode(rank, endpoint, plat, poe, engine))

    addresses = [node.address for node in nodes]
    for node in nodes:
        node.engine.add_communicator(
            CommunicatorConfig(
                comm_id=0,
                local_rank=node.rank,
                addresses=addresses,
                protocol=protocol,
            )
        )

    _establish_peering(env, nodes, protocol, peering)
    cluster = FpgaCluster(env, nodes, topology, protocol)
    # Global observability (repro.obs.runtime.enable): no-op while disabled.
    auto_attach(cluster)
    return cluster


def _establish_peering(env: Environment, nodes: List[FpgaNode],
                       protocol: str, peering: str = "auto") -> None:
    """Session/QP setup, as the host drivers would perform."""
    if protocol == "udp":
        return
    if protocol == "rdma":
        if peering == "auto":
            peering = ("lazy" if len(nodes) >= LAZY_PEERING_THRESHOLD
                       else "eager")
        if peering == "lazy":
            for node in nodes:
                node.poe.enable_lazy_qp()
            return
        for a in nodes:
            for b in nodes:
                if a is not b:
                    a.poe.create_qp(b.address)
        return
    # TCP: i connects, j accepts, for every ordered pair.
    handshakes = []
    for i, a in enumerate(nodes):
        for b in nodes[i + 1:]:
            b.poe.accept(a.address)
            a.poe.accept(b.address)
            handshakes.append(a.poe.connect(b.address))
            handshakes.append(b.poe.connect(a.address))
    if handshakes:
        env.run(until=all_of(env, handshakes))
