"""Cluster construction: wire platforms, POEs, CCLOs and the fabric."""

from repro.cluster.node import FpgaNode
from repro.cluster.builder import FpgaCluster, build_fpga_cluster

__all__ = ["FpgaNode", "FpgaCluster", "build_fpga_cluster"]
