"""Self-contained HTML dashboard for a traced artifact (``bench dashboard``).

One file, no external assets: inline CSS, inline-SVG time-series charts, CSS
stacked bars for the phase breakdown, an HTML flamegraph built from the
collapsed stacks, and the fidelity decision log.  Open it in any browser —
including the artifact viewer of a CI run — without network access.

The renderer is pure string assembly over an
:class:`~repro.obs.capture.TraceCapture`; it never mutates the capture, so
it can re-render the same run at will.
"""

from __future__ import annotations

from html import escape
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.capture import TraceCapture
from repro.obs.critpath import to_collapsed_stacks
from repro.obs.export import PHASE_PRIORITY, attribute_op

#: phase -> bar color (colorblind-safe-ish, dark-on-light)
_PHASE_COLORS = {
    "wire": "#2f6fb5", "poe": "#4aa36a", "dmp": "#c98a2d",
    "uc": "#9266b8", "other": "#9aa0a6",
}
_WAIT_COLOR = "#c5504b"

_CSS = """
body { font: 13px/1.5 system-ui, -apple-system, sans-serif;
       margin: 0; color: #1f2328; background: #f6f8fa; }
header { background: #1f2937; color: #f9fafb; padding: 14px 28px; }
header h1 { font-size: 17px; margin: 0 0 2px; }
header .sub { color: #9ca3af; font-size: 12px; }
main { max-width: 1080px; margin: 0 auto; padding: 18px 28px 48px; }
section { background: #fff; border: 1px solid #d0d7de; border-radius: 8px;
          margin: 18px 0; padding: 14px 18px; }
h2 { font-size: 14px; margin: 0 0 10px; border-bottom: 1px solid #eaeef2;
     padding-bottom: 6px; }
table { border-collapse: collapse; width: 100%; font-size: 12px; }
th, td { text-align: left; padding: 3px 10px 3px 0; white-space: nowrap; }
th { color: #57606a; font-weight: 600; border-bottom: 1px solid #d0d7de; }
td.num, th.num { text-align: right; }
.bar { display: flex; height: 14px; border-radius: 3px; overflow: hidden;
       min-width: 220px; background: #eaeef2; }
.bar div { height: 100%; }
.chart { margin: 10px 0 2px; }
.chart .t { font-size: 12px; color: #57606a; margin-bottom: 2px; }
svg.series { background: #fbfcfd; border: 1px solid #eaeef2;
             border-radius: 4px; }
.fg div { position: absolute; box-sizing: border-box; height: 17px;
          font-size: 10px; line-height: 16px; overflow: hidden;
          white-space: nowrap; border: 1px solid #fff; border-radius: 2px;
          padding: 0 3px; color: #1f2328; }
.note { color: #57606a; font-size: 12px; }
.badge { display: inline-block; background: #ddf4ff; color: #0969da;
         border-radius: 10px; padding: 0 8px; font-size: 11px;
         margin-left: 6px; }
code { background: #eff2f5; padding: 0 4px; border-radius: 3px; }
"""


def _fmt_us(seconds: float) -> str:
    return f"{seconds * 1e6:,.3f}"


# ---------------------------------------------------------------------------
# Time-series charts (inline SVG)
# ---------------------------------------------------------------------------

def _series_from_samples(samples: Sequence[Dict[str, Any]],
                         ) -> Dict[str, List[Tuple[float, float]]]:
    """Aggregate sampled values by metric *base name* (sum across label
    sets and sources per timestamp) -> ordered (t, value) points."""
    acc: Dict[str, Dict[float, float]] = {}
    for s in samples:
        t = s["t"]
        for ks, value in s["values"].items():
            base = ks.split("{", 1)[0]
            acc.setdefault(base, {})
            acc[base][t] = acc[base].get(t, 0.0) + value
    return {name: sorted(points.items()) for name, points in acc.items()}


def _svg_chart(name: str, points: List[Tuple[float, float]],
               width: int = 480, height: int = 96) -> str:
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xr = (x1 - x0) or 1.0
    yr = (y1 - y0) or 1.0
    pad = 4
    w, h = width - 2 * pad, height - 2 * pad
    coords = " ".join(
        f"{pad + (x - x0) / xr * w:.1f},{pad + h - (y - y0) / yr * h:.1f}"
        for x, y in points)
    return (
        f'<div class="chart"><div class="t">{escape(name)} '
        f'<span class="note">last {ys[-1]:,.0f} · max {y1:,.0f} · '
        f'{len(points)} samples over {_fmt_us(x1 - x0)} us</span></div>'
        f'<svg class="series" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f'<polyline fill="none" stroke="#2f6fb5" stroke-width="1.5" '
        f'points="{coords}"/></svg></div>')


def _render_timeseries(capture: TraceCapture, min_charts: int = 3) -> str:
    telemetry = capture.obs.telemetry
    if telemetry is None or not telemetry.samples:
        return ('<p class="note">No telemetry recorded — re-trace with a '
                'cadence (<code>bench dashboard</code> sets one '
                'automatically).</p>')
    series = _series_from_samples(list(telemetry.samples))
    # Moving series first (they tell the story); pad with flat ones so the
    # dashboard always shows at least *min_charts* charts.
    moving = {n: p for n, p in series.items()
              if len(p) > 1 and p[-1][1] != p[0][1]}
    chosen = sorted(moving)
    for name in sorted(series):
        if len(chosen) >= max(min_charts, len(moving)):
            break
        if name not in moving:
            chosen.append(name)
    charts = [_svg_chart(n, series[n]) for n in chosen[:12]]
    info = telemetry.summary()
    head = (f'<p class="note">{info["taken"]} samples at a '
            f'{_fmt_us(info["cadence"])} us cadence '
            f'({info["dropped"]} dropped by the ring buffer); '
            f'{len(series)} metric series, {len(moving)} moving.</p>')
    return head + "".join(charts)


# ---------------------------------------------------------------------------
# Phase / wait-cause breakdowns
# ---------------------------------------------------------------------------

def _stacked_bar(parts: List[Tuple[str, float, str]]) -> str:
    total = sum(frac for _, frac, _ in parts) or 1.0
    cells = "".join(
        f'<div style="width:{frac / total * 100:.2f}%;'
        f'background:{color}" title="{escape(label)}"></div>'
        for label, frac, color in parts if frac > 0)
    return f'<div class="bar">{cells}</div>'


def _render_breakdowns(reports: List[Dict[str, Any]]) -> str:
    phases = list(PHASE_PRIORITY) + ["other"]
    rows = []
    for rep in reports:
        fr = rep["fractions"]
        wait_frac = sum(v for k, v in rep["totals"].items()
                        if k.startswith("wait:")) / (rep["wall_s"] or 1.0)
        parts = [(f"{p} {fr.get(p, 0) * 100:.1f}%", fr.get(p, 0.0),
                  _PHASE_COLORS[p]) for p in phases]
        parts.insert(2, (f"wait {wait_frac * 100:.1f}%", 0.0, _WAIT_COLOR))
        rows.append(
            f"<tr><td>{rep['op_id']}</td>"
            f"<td>{escape(str(rep['name']))}</td>"
            f"<td class='num'>{_fmt_us(rep['wall_s'])}</td>"
            + "".join(f"<td class='num'>{fr.get(p, 0) * 100:.1f}</td>"
                      for p in phases)
            + f"<td class='num'>{wait_frac * 100:.1f}</td>"
            f"<td>{_stacked_bar(parts)}</td></tr>")
    header = ("<tr><th>op</th><th>collective</th><th class='num'>wall us</th>"
              + "".join(f"<th class='num'>{p}%</th>" for p in phases)
              + "<th class='num'>wait%</th><th>phases</th></tr>")
    return f"<table>{header}{''.join(rows)}</table>"


def _render_wait_causes(reports: List[Dict[str, Any]]) -> str:
    causes: Dict[str, float] = {}
    for rep in reports:
        for bucket, value in rep["totals"].items():
            if bucket.startswith("wait:"):
                causes[bucket[5:]] = causes.get(bucket[5:], 0.0) + value
    if not causes:
        return ('<p class="note">No critical-path wait time: every instant '
                'of every op was productive.</p>')
    total = sum(causes.values())
    rows = "".join(
        f"<tr><td>{escape(cause)}</td>"
        f"<td class='num'>{_fmt_us(value)}</td>"
        f"<td class='num'>{value / total * 100:.1f}</td>"
        f"<td>{_stacked_bar([(cause, value, _WAIT_COLOR)] + [('', total - value, '#eaeef2')])}</td></tr>"
        for cause, value in sorted(causes.items(), key=lambda kv: -kv[1]))
    return ("<table><tr><th>cause</th><th class='num'>blocked us</th>"
            f"<th class='num'>share%</th><th></th></tr>{rows}</table>")


# ---------------------------------------------------------------------------
# Fidelity decision log
# ---------------------------------------------------------------------------

def _render_decisions(capture: TraceCapture, fidelity: str,
                      max_rows: int = 200) -> str:
    registry = capture.obs.registry
    totals: Dict[Tuple[str, str], float] = {}
    for metric in registry.metrics():
        if metric.name in ("link_flow_decisions", "poe_flow_decisions"):
            value = metric.value
            if value:
                reason = dict(metric.labels).get("reason", "?")
                side = "link" if metric.name.startswith("link") else "poe"
                totals[(side, reason)] = totals.get((side, reason), 0) + value
    spans = [s for s in capture.obs.tracer.completed_spans
             if s.phase == "fidelity"]
    if not totals and not spans:
        mode_note = (
            "This trace ran at <b>packet</b> fidelity: every segment was an "
            "individual wire event, so no flow admission or burst decisions "
            "were taken.  Re-trace with <code>REPRO_FIDELITY=flow</code> "
            "(or <code>--fidelity flow</code>) to see the decision log."
            if fidelity != "flow" else
            "No flow decisions were recorded: every message stayed below "
            "the burst admission floor.")
        return f'<p class="note">{mode_note}</p>'
    counts = "".join(
        f"<tr><td>{side}</td><td>{escape(reason)}</td>"
        f"<td class='num'>{value:,.0f}</td></tr>"
        for (side, reason), value in sorted(
            totals.items(), key=lambda kv: (-kv[1], kv[0])))
    out = ("<table><tr><th>side</th><th>reason</th>"
           f"<th class='num'>count</th></tr>{counts}</table>")
    if spans:
        spans = sorted(spans, key=lambda s: s.t0)
        shown = spans[:max_rows]
        rows = "".join(
            f"<tr><td class='num'>{_fmt_us(s.t0)}</td>"
            f"<td>{escape(s.component)}</td>"
            f"<td>{escape(s.name)}</td>"
            f"<td class='num'>{s.op_id}</td>"
            f"<td class='num'>{dict(s.detail).get('nbytes', '')}</td>"
            f"<td class='num'>{dict(s.detail).get('segments', '')}</td></tr>"
            for s in shown)
        more = (f'<p class="note">… {len(spans) - len(shown)} more decisions '
                "elided.</p>" if len(spans) > len(shown) else "")
        out += ("<h2 style='margin-top:14px'>Decision timeline</h2>"
                "<table><tr><th class='num'>t (us)</th><th>where</th>"
                "<th>decision</th><th class='num'>op</th>"
                f"<th class='num'>bytes</th><th class='num'>segs</th></tr>"
                f"{rows}</table>{more}")
    return out


# ---------------------------------------------------------------------------
# Flamegraph embed (pure HTML/CSS)
# ---------------------------------------------------------------------------

def _render_flamegraph(capture: TraceCapture, width: int = 1000,
                       max_depth: int = 12) -> str:
    lines = to_collapsed_stacks(capture.obs.tracer, capture.op_ids)
    if not lines:
        return '<p class="note">No closed spans to fold.</p>'
    # Fold the collapsed stacks into a tree of exclusive nanosecond counts.
    root: Dict[str, Any] = {"children": {}, "self": 0, "total": 0}
    for line in lines:
        stack, ns_str = line.rsplit(" ", 1)
        ns = int(ns_str)
        node = root
        node["total"] += ns
        for frame in stack.split(";")[:max_depth]:
            node = node["children"].setdefault(
                frame, {"children": {}, "self": 0, "total": 0})
            node["total"] += ns
        node["self"] += ns
    total = root["total"] or 1
    palette = ["#f2a35e", "#e88f52", "#f2b878", "#e8a152", "#f2c08e"]
    cells: List[str] = []

    def _emit(node: Dict[str, Any], depth: int, left: float) -> None:
        x = left
        for i, (frame, child) in enumerate(sorted(node["children"].items())):
            w = child["total"] / total * width
            if w < 1.0:
                x += w
                continue
            us = child["total"] / 1e3
            label = escape(frame)
            cells.append(
                f'<div style="left:{x:.1f}px;top:{depth * 18}px;'
                f'width:{max(w - 1, 1):.1f}px;'
                f'background:{palette[(depth + i) % len(palette)]}" '
                f'title="{label} — {us:,.1f} us '
                f'({child["total"] / total * 100:.1f}%)">{label}</div>')
            _emit(child, depth + 1, x)
            x += w

    _emit(root, 0, 0.0)
    depth_used = 1
    for line in lines:
        depth_used = max(depth_used,
                         min(len(line.rsplit(" ", 1)[0].split(";")),
                             max_depth))
    height = depth_used * 18 + 4
    return (f'<p class="note">Exclusive self-time per span stack, '
            f'{len(lines)} unique stacks; hover for exact times.</p>'
            f'<div class="fg" style="position:relative;width:{width}px;'
            f'height:{height}px">{"".join(cells)}</div>')


# ---------------------------------------------------------------------------
# Page assembly
# ---------------------------------------------------------------------------

def render_dashboard(capture: TraceCapture,
                     fidelity: Optional[str] = None,
                     diff_doc: Optional[Dict[str, Any]] = None) -> str:
    """Render *capture* as one self-contained HTML page.

    ``diff_doc`` (a :func:`repro.obs.diff.diff_files` document) adds a
    "Differential vs baseline" section with the ranked delta table.
    """
    if fidelity is None:
        from repro.network.fidelity import default_fidelity
        fidelity = default_fidelity()
    reports = [attribute_op(capture.obs.tracer, op)
               for op in capture.op_ids]
    summary = capture.obs.summary()
    wall = max((r["t1"] for r in reports), default=0.0) - \
        min((r["t0"] for r in reports), default=0.0)
    badges = (f'<span class="badge">{len(capture.op_ids)} ops</span>'
              f'<span class="badge">{summary["spans"]} spans</span>'
              f'<span class="badge">fidelity: {escape(fidelity)}</span>')
    drops = summary["events_dropped"] + summary.get("spans_dropped", 0)
    drop_note = (f'<p class="note">⚠ {drops} trace events/spans dropped at '
                 "capacity — totals below are partial.</p>" if drops else "")
    sections = [
        ("Run", f'<table>'
                f'<tr><th>artifact</th><td>{escape(capture.artifact)}</td></tr>'
                f'<tr><th>scenario</th><td>{escape(capture.description)}</td></tr>'
                f'<tr><th>traced wall</th><td>{_fmt_us(wall)} us</td></tr>'
                f'<tr><th>trace events</th><td>{summary["trace_events"]:,} '
                f'({summary["events_dropped"]} dropped)</td></tr>'
                f'<tr><th>telemetry</th><td>'
                f'{summary.get("telemetry_samples", 0)} samples '
                f'({summary.get("telemetry_dropped", 0)} dropped)</td></tr>'
                f'</table>{drop_note}'),
        ("Metric time-series", _render_timeseries(capture)),
        ("Phase breakdown (per collective)", _render_breakdowns(reports)),
        ("Critical-path wait causes", _render_wait_causes(reports)),
        ("Fidelity decision log", _render_decisions(capture, fidelity)),
        ("Flamegraph", _render_flamegraph(capture)),
    ]
    if diff_doc is not None:
        from repro.obs.diff import render_diff_html
        sections.insert(2, ("Differential vs baseline",
                            render_diff_html(diff_doc)))
    body = "".join(f"<section><h2>{escape(title)}</h2>{html}</section>"
                   for title, html in sections)
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        f"<title>repro dashboard — {escape(capture.artifact)}</title>"
        f"<style>{_CSS}</style></head><body>"
        f"<header><h1>repro · {escape(capture.artifact)} {badges}</h1>"
        f'<div class="sub">{escape(capture.description)}</div></header>'
        f"<main>{body}</main></body></html>\n")
