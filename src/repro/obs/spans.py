"""Structured span tracing layered on the flat event ring buffer.

A *span* is a named interval on one component's timeline: it has an id, an
optional parent span, an optional per-collective ``op_id``, and a *phase*
label (``"collective"``, ``"uc"``, ``"dmp"``, ``"poe"``, ``"wire"``, …)
that the breakdown report attributes time by.

:class:`SpanTracer` extends :class:`repro.trace.Tracer`: every
``span_begin``/``span_end`` also records a flat event into the ring buffer
(so existing ``Tracer`` consumers — ``summary()``, ``filter()``,
``to_csv()`` — keep working), while completed :class:`Span` records
accumulate in a separate bounded list for the exporters.

``op_id`` is the propagation key: the driver (or the uC, for engine-direct
calls) allocates one id per collective command via :meth:`next_op_id`, it
rides in :class:`~repro.cclo.microcontroller.CollectiveArgs`,
:class:`~repro.cclo.dmp.Microcode` and the wire
:class:`~repro.cclo.messages.Signature`, and every downstream span carries
it — including wire spans recorded on *other* nodes, which is what lets
``phase_breakdown`` account a collective's remote message deliveries.
"""

from __future__ import annotations

import itertools
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Optional

from repro.trace import Tracer


@dataclass
class Span:
    """One completed (or still-open) interval on a component timeline."""

    sid: int
    component: str          # "cclo0.uc" — node-qualified component
    name: str               # "instr", "collective:allreduce", ...
    phase: str              # attribution bucket for phase_breakdown
    t0: float
    t1: float = math.nan    # NaN while open
    op_id: int = -1
    parent: int = -1
    detail: tuple = field(default=())

    @property
    def closed(self) -> bool:
        return not math.isnan(self.t1)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    @property
    def node(self) -> str:
        """Node prefix of the component ("cclo0.uc" -> "cclo0")."""
        head, _, _ = self.component.partition(".")
        return head

    def __str__(self) -> str:
        dur = f"{self.duration * 1e6:.3f}us" if self.closed else "open"
        return (f"<Span #{self.sid} {self.component}/{self.name} "
                f"phase={self.phase} op={self.op_id} {dur}>")


class SpanTracer(Tracer):
    """Tracer with explicit span begin/end, ids, parents and op ids.

    Completed spans are kept in a bounded deque (same ring-buffer policy as
    the flat event buffer: oldest evicted first, ``spans_dropped`` counts
    evictions).  One SpanTracer is shared by every engine of a cluster so
    span ids and op ids are unique cluster-wide.
    """

    def __init__(self, capacity: int = 100_000,
                 span_capacity: Optional[int] = None):
        super().__init__(capacity)
        span_capacity = span_capacity or capacity
        self._span_ids = itertools.count(1)
        self._op_ids = itertools.count(1)
        self._open: Dict[int, Span] = {}
        self._completed: Deque[Span] = deque(maxlen=span_capacity)
        self._roots: Dict[int, int] = {}  # op_id -> root span id
        self.spans_dropped = 0

    # -- op ids ------------------------------------------------------------

    def next_op_id(self) -> int:
        """Allocate a collective operation id (unique per tracer)."""
        return next(self._op_ids)

    # -- span lifecycle ----------------------------------------------------

    def span_begin(self, time: float, component: str, name: str,
                   phase: str = "other", op_id: int = -1, parent: int = -1,
                   **detail: Any) -> int:
        """Open a span; returns its id for the matching :meth:`span_end`.

        A span with an ``op_id`` but no explicit parent is parented to the
        operation's root span (the ``phase="collective"`` span), giving the
        exported trace its nesting without any extra plumbing.
        """
        sid = next(self._span_ids)
        if parent < 0 and op_id >= 0:
            parent = self._roots.get(op_id, -1)
            if parent == sid:
                parent = -1
        span = Span(sid=sid, component=component, name=name, phase=phase,
                    t0=time, op_id=op_id, parent=parent,
                    detail=tuple(sorted(detail.items())))
        self._open[sid] = span
        if phase == "collective" and op_id >= 0:
            self._roots.setdefault(op_id, sid)
        self.record(time, component, "span_begin", span=sid, name=name,
                    phase=phase, op=op_id, parent=parent)
        return sid

    def span_end(self, time: float, sid: int, **detail: Any) -> None:
        """Close the span *sid*; unknown ids are ignored (idempotent)."""
        span = self._open.pop(sid, None)
        if span is None:
            return
        span.t1 = time
        if detail:
            span.detail = span.detail + tuple(sorted(detail.items()))
        self._store(span)
        self.record(time, span.component, "span_end", span=sid,
                    name=span.name)

    def span_complete(self, component: str, name: str, t0: float, t1: float,
                      phase: str = "other", op_id: int = -1,
                      parent: int = -1, **detail: Any) -> int:
        """Record an already-finished span in one call (analytic timings:
        a component that computed its start/finish without living through
        them, e.g. wire delivery or a reserved pipe interval)."""
        sid = next(self._span_ids)
        if parent < 0 and op_id >= 0:
            parent = self._roots.get(op_id, -1)
        span = Span(sid=sid, component=component, name=name, phase=phase,
                    t0=t0, t1=t1, op_id=op_id, parent=parent,
                    detail=tuple(sorted(detail.items())))
        self._store(span)
        self.record(t1, component, "span", span=sid, name=name, phase=phase,
                    op=op_id, dur=t1 - t0)
        return sid

    def _store(self, span: Span) -> None:
        if len(self._completed) == self._completed.maxlen:
            self.spans_dropped += 1
        self._completed.append(span)

    # -- queries -----------------------------------------------------------

    @property
    def completed_spans(self) -> List[Span]:
        return list(self._completed)

    def iter_spans(self) -> Iterator[Span]:
        return iter(self._completed)

    @property
    def unclosed_count(self) -> int:
        """Spans begun but never ended — nonzero means a truncated trace
        (or an operation still in flight when the simulation stopped)."""
        return len(self._open)

    @property
    def open_spans(self) -> List[Span]:
        return list(self._open.values())

    def spans_for(self, op_id: int) -> List[Span]:
        """Completed spans belonging to one collective operation."""
        return [s for s in self._completed if s.op_id == op_id]

    def root_span(self, op_id: int) -> Optional[Span]:
        """The ``phase="collective"`` root span of *op_id*, if closed."""
        sid = self._roots.get(op_id)
        if sid is None:
            return None
        for span in self._completed:
            if span.sid == sid:
                return span
        return self._open.get(sid)

    def op_ids(self) -> List[int]:
        """Operation ids with a recorded root span, in allocation order."""
        return sorted(self._roots)

    def clear(self) -> None:
        super().clear()
        self._open.clear()
        self._completed.clear()
        self._roots.clear()
        self.spans_dropped = 0
