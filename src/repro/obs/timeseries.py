"""Continuous telemetry: sim-time-cadenced snapshots of the metrics registry.

End-of-run summaries answer "how did it go"; a serving front end (and any
divergence hunt) needs "how was it going" — utilization ramps, credit
stalls, convoy formation over time.  A :class:`TelemetrySession` rides the
simulation heap: every ``cadence`` sim-seconds it reads every instrument in
a :class:`~repro.obs.metrics.MetricsRegistry` (callback gauges sample live
component state) and appends one row to a bounded ring buffer.

The sampler is self-rescheduling and *self-stopping*: a tick only re-arms
while the environment still has work queued (``env.peek()`` finite), so an
``env.run()`` that drains the heap terminates normally — the session never
keeps a dead simulation alive.  Drivers that alternate ``run()`` phases call
:meth:`TelemetrySession.poke` to re-arm before each phase.

Snapshots are plain picklable dicts so pooled sweep workers ship their ring
back to the parent, which :meth:`~TelemetrySession.merge`\\ s them into one
time-ordered series (rows carry a ``source`` tag per worker).  Exports:

- :meth:`to_jsonl` — one JSON object per sample, for ad-hoc tooling;
- :meth:`to_prometheus` — text exposition format (latest sample per
  source), for scrape-style ingestion;
- :meth:`to_chrome_counters` — ``ph:"C"`` counter events that overlay the
  span trace in Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               _key_str)

#: default ring capacity — at the default cadence this covers the longest
#: traced artifact with room to spare; older samples drop first.
DEFAULT_CAPACITY = 4096


def _prom_sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _prom_line(ks: str, value: float, source: str, t: float) -> str:
    """One exposition line from a ``name{k=v,...}`` key string."""
    if "{" in ks:
        name, rest = ks.split("{", 1)
        inner = rest[:-1]
        pairs = [p.split("=", 1) for p in inner.split(",") if "=" in p]
    else:
        name, pairs = ks, []
    pairs.append(["source", source])
    labels = ",".join(f'{_prom_sanitize(k)}="{_prom_escape(v)}"'
                      for k, v in pairs)
    stamp = int(round(t * 1e3))  # sim-time milliseconds
    return f"repro_{_prom_sanitize(name)}{{{labels}}} {value:.17g} {stamp}"


class TelemetrySession:
    """Ring-buffered time-series of registry snapshots on a sim-time cadence.

    Args:
        registry: the instruments to sample (callback gauges read live).
        cadence: sim-seconds between samples (> 0).
        capacity: ring size; the oldest sample drops when full
            (:attr:`dropped` counts how many).
        source: tag stamped on every sample this session takes itself —
            pooled workers use their point id so merged series stay
            attributable.
    """

    def __init__(self, registry: MetricsRegistry, cadence: float,
                 capacity: int = DEFAULT_CAPACITY, source: str = "main"):
        if cadence <= 0:
            raise ValueError(f"telemetry cadence must be > 0, got {cadence}")
        if capacity <= 0:
            raise ValueError(f"telemetry capacity must be > 0: {capacity}")
        self.registry = registry
        self.cadence = cadence
        self.capacity = capacity
        self.source = source
        self.samples: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self.samples_taken = 0
        self.dropped = 0
        self._envs: List[Any] = []
        self._armed: Dict[int, bool] = {}

    # -- sampling ----------------------------------------------------------

    def attach(self, env) -> None:
        """Start sampling *env* (first tick immediately, then every
        ``cadence`` sim-seconds while the heap has work)."""
        if id(env) not in self._armed:
            self._envs.append(env)
        self._armed[id(env)] = True
        env.schedule_callback(0.0, self._tick, env)

    def poke(self) -> None:
        """Re-arm the sampler on attached environments whose previous tick
        found an empty heap (between ``run()`` phases)."""
        for env in self._envs:
            if not self._armed.get(id(env)) and env.peek() != float("inf"):
                self._armed[id(env)] = True
                env.schedule_callback(0.0, self._tick, env)

    def _tick(self, env) -> None:
        self.sample(env.now)
        if env.peek() != float("inf"):
            env.schedule_callback(self.cadence, self._tick, env)
        else:
            # Heap drained: this was the final sample.  poke() re-arms.
            self._armed[id(env)] = False

    def sample(self, t: float) -> None:
        """Take one sample of every instrument at sim time *t*."""
        values: Dict[str, float] = {}
        for metric in self.registry.metrics():
            if isinstance(metric, Histogram):
                values[_key_str((metric.name + "_count", metric.labels))] = (
                    float(metric.count))
                values[_key_str((metric.name + "_sum", metric.labels))] = (
                    metric.total)
            elif isinstance(metric, (Counter, Gauge)):
                values[_key_str((metric.name, metric.labels))] = metric.value
        if len(self.samples) == self.capacity:
            self.dropped += 1
        self.samples.append({"t": t, "source": self.source, "values": values})
        self.samples_taken += 1

    # -- cross-process merging ---------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Plain picklable state (ships worker -> parent in pooled sweeps)."""
        return {
            "source": self.source,
            "cadence": self.cadence,
            "samples": list(self.samples),
            "dropped": self.dropped,
            "taken": self.samples_taken,
        }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a worker session's :meth:`snapshot` into this one, keeping
        the combined series time-ordered (stable across sources)."""
        incoming = snapshot.get("samples", [])
        if incoming:
            combined = sorted(
                list(self.samples) + list(incoming),
                key=lambda s: (s["t"], s.get("source", "")))
            overflow = len(combined) - self.capacity
            if overflow > 0:
                self.dropped += overflow
                combined = combined[overflow:]
            self.samples = deque(combined, maxlen=self.capacity)
        self.dropped += snapshot.get("dropped", 0)
        self.samples_taken += snapshot.get("taken", len(incoming))

    # -- exports -----------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per sample: ``{"t", "source", "values"}``."""
        return "\n".join(
            json.dumps(s, sort_keys=True) for s in self.samples)

    def to_prometheus(self) -> str:
        """Prometheus text exposition: the latest sample per source, metric
        names prefixed ``repro_`` and timestamped in sim-time ms."""
        latest: Dict[str, Dict[str, Any]] = {}
        for s in self.samples:
            latest[s.get("source", "main")] = s
        lines: List[str] = []
        for source in sorted(latest):
            s = latest[source]
            for ks in sorted(s["values"]):
                lines.append(_prom_line(ks, s["values"][ks], source, s["t"]))
        return "\n".join(lines) + ("\n" if lines else "")

    def to_chrome_counters(self, pid: int = 1) -> List[Dict[str, Any]]:
        """Chrome-trace ``ph:"C"`` counter events (merge into a span trace's
        event list to overlay metrics on the timeline)."""
        events: List[Dict[str, Any]] = []
        for s in self.samples:
            ts = s["t"] * 1e6  # trace timestamps are microseconds
            source = s.get("source", "main")
            for ks, value in s["values"].items():
                name = ks if source == "main" else f"{ks}@{source}"
                events.append({
                    "ph": "C", "name": name, "pid": pid, "tid": 0,
                    "ts": ts, "args": {"value": value},
                })
        return events

    def summary(self) -> Dict[str, Any]:
        return {
            "samples": len(self.samples),
            "taken": self.samples_taken,
            "dropped": self.dropped,
            "cadence": self.cadence,
        }
