"""Exporters and reports over :class:`~repro.obs.spans.SpanTracer` data.

- :func:`to_chrome_trace` — Chrome trace-event JSON.  Load the file at
  https://ui.perfetto.dev (or ``chrome://tracing``) to see one process
  track per node and one thread track per component, with collective root
  spans nesting their uC / DMP / POE / wire phases.
- :func:`metrics_to_csv` — flat CSV dump of a metrics registry.
- :func:`phase_breakdown` — exclusive per-phase time attribution for one
  collective operation; buckets sum to the collective's wall sim-time by
  construction.
"""

from __future__ import annotations

import csv
import json
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.spans import Span, SpanTracer

#: When several phases overlap at an instant, the most specific wins.
#: Wire occupancy beats POE processing beats DMP execution beats uC
#: sequencing; time under the root span covered by none of them is
#: attributed to "other" (queueing, driver staging, sync waits).
PHASE_PRIORITY = ("wire", "poe", "dmp", "uc")


# ---------------------------------------------------------------------------
# Chrome trace-event JSON
# ---------------------------------------------------------------------------

def to_chrome_trace(tracer: SpanTracer,
                    spans: Optional[Sequence[Span]] = None) -> Dict[str, Any]:
    """Build a Chrome trace-event object from completed spans.

    Spans become "X" (complete) events with microsecond timestamps.  The
    node part of each component ("cclo0.uc" -> "cclo0") maps to a pid and
    the component part to a tid, labeled through "M" metadata events, so
    Perfetto renders one track per node×component.
    """
    if spans is None:
        spans = tracer.completed_spans
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}
    events: List[Dict[str, Any]] = []

    for span in spans:
        if not span.closed:
            continue
        node, _, comp = span.component.partition(".")
        if not comp:
            node, comp = "sim", node
        pid = pids.setdefault(node, len(pids) + 1)
        tkey = (node, comp)
        if tkey not in tids:
            tids[tkey] = len(tids) + 1
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid,
                "tid": tids[tkey], "args": {"name": comp},
            })
        args: Dict[str, Any] = {"span": span.sid}
        if span.op_id >= 0:
            args["op"] = span.op_id
        if span.parent >= 0:
            args["parent"] = span.parent
        args.update(dict(span.detail))
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.phase,
            "ts": span.t0 * 1e6,
            "dur": max(span.duration * 1e6, 0.001),
            "pid": pid,
            "tid": tids[tkey],
            "args": args,
        })

    meta = [
        {"ph": "M", "name": "process_name", "pid": pid,
         "args": {"name": node}}
        for node, pid in pids.items()
    ]
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ns",
        "otherData": {
            "spans": sum(1 for s in spans if s.closed),
            "unclosed": tracer.unclosed_count,
            "spans_dropped": tracer.spans_dropped,
            "events_dropped": tracer.dropped,
        },
    }


def write_chrome_trace(tracer: SpanTracer, path: str) -> int:
    """Write :func:`to_chrome_trace` output to *path*; returns span count."""
    doc = to_chrome_trace(tracer)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return doc["otherData"]["spans"]


def validate_chrome_trace(doc: Dict[str, Any]) -> List[str]:
    """Schema check for Perfetto-loadability; returns a list of problems
    (empty means valid).

    Checks the envelope, then per event: required keys by phase type
    ("X" needs ph/ts/dur/pid/tid/name, "M" needs ph/name/pid/args),
    numeric timestamps and non-negative durations.
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event[{i}]: not an object")
            continue
        ph = ev.get("ph")
        if ph == "M":
            required = ("ph", "name", "pid", "args")
        elif ph == "X":
            required = ("ph", "ts", "dur", "pid", "tid", "name")
        else:
            problems.append(f"event[{i}]: unsupported ph={ph!r}")
            continue
        missing = [k for k in required if k not in ev]
        if missing:
            problems.append(f"event[{i}] ({ph}): missing keys {missing}")
            continue
        if ph == "X":
            if not isinstance(ev["ts"], (int, float)):
                problems.append(f"event[{i}]: ts not numeric")
            if not isinstance(ev["dur"], (int, float)) or ev["dur"] < 0:
                problems.append(f"event[{i}]: dur not a non-negative number")
    return problems


# ---------------------------------------------------------------------------
# Metrics CSV
# ---------------------------------------------------------------------------

def metrics_to_csv(registry, path: str) -> int:
    """Dump a registry's instruments to CSV; returns rows written."""
    fields = ["metric", "kind", "value", "count", "sum", "mean",
              "min", "max", "p50", "p99"]
    rows = registry.rows()
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields, restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return len(rows)


# ---------------------------------------------------------------------------
# Phase attribution
# ---------------------------------------------------------------------------

def phase_breakdown(tracer: SpanTracer, op_id: int) -> Dict[str, Any]:
    """Exclusive per-phase time attribution for collective *op_id*.

    Every instant of the root span's ``[t0, t1]`` window is attributed to
    exactly one bucket — the highest-priority phase active at that instant
    (:data:`PHASE_PRIORITY`), or ``"other"`` when none is.  The buckets
    therefore sum to the collective's wall sim-time exactly; overlapping
    spans (e.g. two links busy at once) never double-count.
    """
    root = tracer.root_span(op_id)
    if root is None:
        raise KeyError(f"op {op_id}: no root collective span recorded")
    if not root.closed:
        raise ValueError(f"op {op_id}: collective span still open")
    t0, t1 = root.t0, root.t1
    wall = t1 - t0

    phase_spans: Dict[str, List[tuple]] = {p: [] for p in PHASE_PRIORITY}
    span_count = 0
    for span in tracer.spans_for(op_id):
        if span.sid == root.sid or not span.closed:
            continue
        if span.phase not in phase_spans:
            continue
        lo, hi = max(span.t0, t0), min(span.t1, t1)
        if hi > lo or (span.t0 >= t0 and span.t1 <= t1):
            phase_spans[span.phase].append((lo, hi))
            span_count += 1

    # Sweep the boundary set; attribute each elementary interval to the
    # highest-priority phase covering it.
    bounds = {t0, t1}
    for intervals in phase_spans.values():
        for lo, hi in intervals:
            bounds.add(lo)
            bounds.add(hi)
    cuts = sorted(bounds)
    buckets = {p: 0.0 for p in PHASE_PRIORITY}
    buckets["other"] = 0.0
    for lo, hi in zip(cuts, cuts[1:]):
        mid = (lo + hi) / 2.0
        width = hi - lo
        for phase in PHASE_PRIORITY:
            if any(a <= mid < b for a, b in phase_spans[phase]):
                buckets[phase] += width
                break
        else:
            buckets["other"] += width

    return {
        "op_id": op_id,
        "name": root.name,
        "t0": t0,
        "t1": t1,
        "wall_s": wall,
        "spans": span_count,
        "phases": buckets,
        "fractions": {
            p: (v / wall if wall > 0 else 0.0) for p, v in buckets.items()
        },
    }


def render_phase_table(breakdowns: Sequence[Dict[str, Any]]) -> str:
    """Fixed-width table over one or more :func:`phase_breakdown` results."""
    phases = list(PHASE_PRIORITY) + ["other"]
    header = (f"{'op':>4}  {'collective':<24} {'wall_us':>10}  "
              + "  ".join(f"{p + '%':>6}" for p in phases))
    lines = [header, "-" * len(header)]
    for bd in breakdowns:
        fr = bd["fractions"]
        lines.append(
            f"{bd['op_id']:>4}  {bd['name']:<24} {bd['wall_s'] * 1e6:>10.2f}  "
            + "  ".join(f"{fr.get(p, 0.0) * 100:>6.1f}" for p in phases))
    return "\n".join(lines)
