"""Exporters and reports over :class:`~repro.obs.spans.SpanTracer` data.

- :func:`to_chrome_trace` — Chrome trace-event JSON.  Load the file at
  https://ui.perfetto.dev (or ``chrome://tracing``) to see one process
  track per node and one thread track per component, with collective root
  spans nesting their uC / DMP / POE / wire phases.
- :func:`metrics_to_csv` — flat CSV dump of a metrics registry.
- :func:`phase_breakdown` — exclusive per-phase time attribution for one
  collective operation; buckets sum to the collective's wall sim-time by
  construction.
"""

from __future__ import annotations

import csv
import json
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.spans import Span, SpanTracer

#: When several phases overlap at an instant, the most specific wins.
#: Wire occupancy beats POE processing beats DMP execution beats uC
#: sequencing; time under the root span covered by none of them is
#: attributed to "other" (queueing, driver staging, sync waits).
PHASE_PRIORITY = ("wire", "poe", "dmp", "uc")

#: Phase label of wait spans recorded at blocking sites.  Wait spans carry
#: a ``cause`` detail entry (see :data:`WAIT_PRIORITY`) and never influence
#: :func:`phase_breakdown`'s productive buckets — they only explain the
#: time that breakdown calls "other".
WAIT_PHASE = "wait"

#: Wait causes in attribution order (when two stall reasons overlap, the
#: more specific/upstream one wins).  Unknown causes sort after these.
WAIT_PRIORITY = (
    "rendezvous",         # uC blocked on RNDZ_INIT / RNDZ_DONE / WRITE landing
    "rx_match",           # DMP operand gate: eager message not yet arrived
    "retx_backpressure",  # TCP window closed (retransmission-buffer pressure)
    "credit_stall",       # RDMA QP out of credits
    "rx_pool",            # RBM out of Rx buffers / bytes (eager backpressure)
    "dmp_slot",           # all DMP parallel slots busy
    "uc_dispatch",        # uC command queue / sequential-core serialization
    "link_busy",          # link egress busy with other traffic
    "pcie",               # host<->device DMA, staging, MMIO invocation
)


# ---------------------------------------------------------------------------
# Chrome trace-event JSON
# ---------------------------------------------------------------------------

def to_chrome_trace(tracer: SpanTracer,
                    spans: Optional[Sequence[Span]] = None) -> Dict[str, Any]:
    """Build a Chrome trace-event object from completed spans.

    Spans become "X" (complete) events with microsecond timestamps.  The
    node part of each component ("cclo0.uc" -> "cclo0") maps to a pid and
    the component part to a tid, labeled through "M" metadata events, so
    Perfetto renders one track per node×component.

    Spans still open at export (a partial or crashed run) get a synthetic
    end at the final recorded sim time, flagged ``"truncated": true`` in
    their args, so the trace stays loadable; ``otherData.unclosed`` still
    reports them for CI gating.
    """
    open_spans: List[Span] = []
    if spans is None:
        spans = tracer.completed_spans
        open_spans = tracer.open_spans
    final_t = 0.0
    if open_spans:
        final_t = max(
            max((s.t1 for s in spans if s.closed), default=0.0),
            max(s.t0 for s in open_spans),
        )
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}
    events: List[Dict[str, Any]] = []

    for span, truncated in ([(s, False) for s in spans]
                            + [(s, True) for s in open_spans]):
        if not truncated and not span.closed:
            continue
        node, _, comp = span.component.partition(".")
        if not comp:
            node, comp = "sim", node
        pid = pids.setdefault(node, len(pids) + 1)
        tkey = (node, comp)
        if tkey not in tids:
            tids[tkey] = len(tids) + 1
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid,
                "tid": tids[tkey], "args": {"name": comp},
            })
        args: Dict[str, Any] = {"span": span.sid}
        if span.op_id >= 0:
            args["op"] = span.op_id
        if span.parent >= 0:
            args["parent"] = span.parent
        args.update(dict(span.detail))
        if truncated:
            args["truncated"] = True
            dur = max((final_t - span.t0) * 1e6, 0.001)
        else:
            dur = max(span.duration * 1e6, 0.001)
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.phase,
            "ts": span.t0 * 1e6,
            "dur": dur,
            "pid": pid,
            "tid": tids[tkey],
            "args": args,
        })

    meta = [
        {"ph": "M", "name": "process_name", "pid": pid,
         "args": {"name": node}}
        for node, pid in pids.items()
    ]
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ns",
        "otherData": {
            "spans": sum(1 for s in spans if s.closed),
            "truncated_spans": len(open_spans),
            "unclosed": tracer.unclosed_count,
            "spans_dropped": tracer.spans_dropped,
            "events_dropped": tracer.dropped,
        },
    }


def write_chrome_trace(tracer: SpanTracer, path: str) -> int:
    """Write :func:`to_chrome_trace` output to *path*; returns span count."""
    doc = to_chrome_trace(tracer)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return doc["otherData"]["spans"]


def validate_chrome_trace(doc: Dict[str, Any]) -> List[str]:
    """Schema check for Perfetto-loadability; returns a list of problems
    (empty means valid).

    Checks the envelope, then per event: required keys by phase type
    ("X" needs ph/ts/dur/pid/tid/name, "M" needs ph/name/pid/args),
    numeric timestamps and non-negative durations.
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event[{i}]: not an object")
            continue
        ph = ev.get("ph")
        if ph == "M":
            required = ("ph", "name", "pid", "args")
        elif ph == "X":
            required = ("ph", "ts", "dur", "pid", "tid", "name")
        else:
            problems.append(f"event[{i}]: unsupported ph={ph!r}")
            continue
        missing = [k for k in required if k not in ev]
        if missing:
            problems.append(f"event[{i}] ({ph}): missing keys {missing}")
            continue
        if ph == "X":
            if not isinstance(ev["ts"], (int, float)):
                problems.append(f"event[{i}]: ts not numeric")
            if not isinstance(ev["dur"], (int, float)) or ev["dur"] < 0:
                problems.append(f"event[{i}]: dur not a non-negative number")
    return problems


# ---------------------------------------------------------------------------
# Metrics CSV
# ---------------------------------------------------------------------------

def metrics_to_csv(registry, path: str) -> int:
    """Dump a registry's instruments to CSV; returns rows written."""
    fields = ["metric", "kind", "value", "count", "sum", "mean",
              "min", "max", "p50", "p99"]
    rows = registry.rows()
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields, restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return len(rows)


# ---------------------------------------------------------------------------
# Phase attribution
# ---------------------------------------------------------------------------

def _clip(span: Span, t0: float, t1: float):
    """Clip a span to the op window; None when it falls entirely outside."""
    lo, hi = max(span.t0, t0), min(span.t1, t1)
    if hi > lo or (span.t0 >= t0 and span.t1 <= t1):
        return lo, hi
    return None


def attribute_op(tracer: SpanTracer, op_id: int) -> Dict[str, Any]:
    """Single interval-sweep attribution for collective *op_id*, computing
    the productive phase buckets AND the critical-path view together.

    Both attributions walk the *same* elementary intervals (one boundary
    set over every productive and wait span), so their totals reconcile
    exactly: ``phases`` is what :func:`phase_breakdown` reports, while
    ``totals``/``segments`` re-attribute the identical intervals with wait
    causes ranked between the productive phases —

        wire > poe > wait:<cause> (:data:`WAIT_PRIORITY`) > dmp > uc > other

    Bytes on the wire or in the POE pipeline are real progress and always
    win; an instant with no bytes moving but a recorded stall is *explained*
    by its wait cause; dmp/uc rank below waits because their coarse spans
    enclose their own internal stalls (a DMP instr span covers its operand
    gate).  ``wait_observed`` additionally reports the raw per-cause union
    (may overlap productive time — it answers "how long was anything stalled
    on X", not "what was the op blocked on").

    When the tracer's span ring buffer overflowed (``spans_dropped > 0``),
    evicted spans have silently vanished from every bucket; the report
    carries ``"incomplete": True`` so consumers (``bench trace`` /
    ``bench critpath``, the ledger, ``bench diff``) can surface the skew
    instead of presenting partial totals as exact.
    """
    root = tracer.root_span(op_id)
    if root is None:
        raise KeyError(f"op {op_id}: no root collective span recorded")
    if not root.closed:
        raise ValueError(f"op {op_id}: collective span still open")
    t0, t1 = root.t0, root.t1
    wall = t1 - t0

    # bucket -> [(lo, hi, sid, component, name), ...]
    productive: Dict[str, List[tuple]] = {p: [] for p in PHASE_PRIORITY}
    waits: Dict[str, List[tuple]] = {}
    span_count = 0
    wait_span_count = 0
    for span in tracer.spans_for(op_id):
        if span.sid == root.sid or not span.closed:
            continue
        if span.phase in productive:
            clip = _clip(span, t0, t1)
            if clip is not None:
                productive[span.phase].append(
                    (clip[0], clip[1], span.sid, span.component, span.name))
                span_count += 1
        elif span.phase == WAIT_PHASE:
            clip = _clip(span, t0, t1)
            if clip is not None:
                cause = dict(span.detail).get("cause", "unknown")
                waits.setdefault(cause, []).append(
                    (clip[0], clip[1], span.sid, span.component, span.name))
                wait_span_count += 1

    wait_order = [c for c in WAIT_PRIORITY if c in waits]
    wait_order += sorted(c for c in waits if c not in WAIT_PRIORITY)

    # One boundary set for both attributions: identical elementary
    # intervals, identical widths, identical float additions.
    bounds = {t0, t1}
    for intervals in productive.values():
        for lo, hi, _sid, _comp, _name in intervals:
            bounds.add(lo)
            bounds.add(hi)
    for intervals in waits.values():
        for lo, hi, _sid, _comp, _name in intervals:
            bounds.add(lo)
            bounds.add(hi)
    cuts = sorted(bounds)

    crit_intervals: Dict[str, List[tuple]] = {"wire": productive["wire"],
                                              "poe": productive["poe"]}
    crit_order = ["wire", "poe"]
    for cause in wait_order:
        bucket = f"wait:{cause}"
        crit_order.append(bucket)
        crit_intervals[bucket] = waits[cause]
    crit_order += ["dmp", "uc"]
    crit_intervals["dmp"] = productive["dmp"]
    crit_intervals["uc"] = productive["uc"]

    phases = {p: 0.0 for p in PHASE_PRIORITY}
    phases["other"] = 0.0
    totals = {b: 0.0 for b in crit_order}
    totals["other"] = 0.0
    segments: List[Dict[str, Any]] = []
    for lo, hi in zip(cuts, cuts[1:]):
        mid = (lo + hi) / 2.0
        width = hi - lo
        for phase in PHASE_PRIORITY:
            if any(a <= mid < b
                   for a, b, _s, _c, _n in productive[phase]):
                phases[phase] += width
                break
        else:
            phases["other"] += width
        winner = None
        for bucket in crit_order:
            cover = [iv for iv in crit_intervals[bucket]
                     if iv[0] <= mid < iv[1]]
            if cover:
                # Several overlapping spans of the same bucket: credit the
                # earliest-starting one (deterministic tiebreak on sid).
                winner = (bucket, min(cover, key=lambda iv: (iv[0], iv[2])))
                break
        if winner is None:
            totals["other"] += width
            sid, comp, sname = -1, "", ""
            bucket = "other"
        else:
            bucket, iv = winner
            totals[bucket] += width
            sid, comp, sname = iv[2], iv[3], iv[4]
        last = segments[-1] if segments else None
        if (last is not None and last["bucket"] == bucket
                and last["sid"] == sid and last["t1"] == lo):
            last["t1"] = hi
            last["dur_s"] = last["t1"] - last["t0"]
        else:
            segments.append({"t0": lo, "t1": hi, "dur_s": width,
                             "bucket": bucket, "sid": sid,
                             "component": comp, "span": sname})

    wait_observed: Dict[str, float] = {}
    for cause in wait_order:
        merged = 0.0
        cur_lo = cur_hi = None
        for lo, hi, _s, _c, _n in sorted(waits[cause]):
            if cur_hi is None or lo > cur_hi:
                if cur_hi is not None:
                    merged += cur_hi - cur_lo
                cur_lo, cur_hi = lo, hi
            else:
                cur_hi = max(cur_hi, hi)
        if cur_hi is not None:
            merged += cur_hi - cur_lo
        wait_observed[cause] = merged

    return {
        "op_id": op_id,
        "name": root.name,
        "node": root.node,
        "t0": t0,
        "t1": t1,
        "wall_s": wall,
        "spans": span_count,
        "wait_spans": wait_span_count,
        "phases": phases,
        "fractions": {
            p: (v / wall if wall > 0 else 0.0) for p, v in phases.items()
        },
        "totals": totals,
        "segments": segments,
        "wait_observed": wait_observed,
        "incomplete": getattr(tracer, "spans_dropped", 0) > 0,
    }


def phase_breakdown(tracer: SpanTracer, op_id: int) -> Dict[str, Any]:
    """Exclusive per-phase time attribution for collective *op_id*.

    Every instant of the root span's ``[t0, t1]`` window is attributed to
    exactly one bucket — the highest-priority phase active at that instant
    (:data:`PHASE_PRIORITY`), or ``"other"`` when none is.  The buckets
    therefore sum to the collective's wall sim-time exactly; overlapping
    spans (e.g. two links busy at once) never double-count.

    Delegates to :func:`attribute_op` — the critical-path report in
    :mod:`repro.obs.critpath` shares the sweep, so its cause totals
    reconcile bitwise against these buckets.
    """
    report = attribute_op(tracer, op_id)
    return {k: report[k] for k in ("op_id", "name", "t0", "t1", "wall_s",
                                   "spans", "phases", "fractions",
                                   "incomplete")}


def render_phase_table(breakdowns: Sequence[Dict[str, Any]]) -> str:
    """Fixed-width table over one or more :func:`phase_breakdown` results."""
    phases = list(PHASE_PRIORITY) + ["other"]
    header = (f"{'op':>4}  {'collective':<24} {'wall_us':>10}  "
              + "  ".join(f"{p + '%':>6}" for p in phases))
    lines = [header, "-" * len(header)]
    for bd in breakdowns:
        fr = bd["fractions"]
        lines.append(
            f"{bd['op_id']:>4}  {bd['name']:<24} {bd['wall_s'] * 1e6:>10.2f}  "
            + "  ".join(f"{fr.get(p, 0.0) * 100:>6.1f}" for p in phases))
    return "\n".join(lines)
