"""Unified observability: metrics registry, span tracing, exporters.

The simulation platform exists to shorten "hardware debugging cycles"
(§4.3); this package is what makes that claim operational.  Three layers:

- :mod:`repro.obs.metrics` — a registry of :class:`Counter` / :class:`Gauge`
  / :class:`Histogram` instruments that components register into, with
  sim-time-windowed rates and cross-process merging for pooled sweeps;
- :mod:`repro.obs.spans` — :class:`SpanTracer`, structured begin/end spans
  with ids, parent links and per-collective ``op_id`` propagation layered on
  the flat :class:`repro.trace.Tracer` ring buffer;
- :mod:`repro.obs.export` — Chrome trace-event JSON (opens in Perfetto),
  CSV metrics dumps and the :func:`phase_breakdown` report API;
- :mod:`repro.obs.critpath` — per-collective critical paths with
  wait-cause attribution, blocking DAGs and collapsed-stack flamegraphs;
- :mod:`repro.obs.timeseries` — :class:`TelemetrySession`, continuous
  sim-time-cadenced registry snapshots (JSONL / Prometheus / Chrome
  counter exports, merged across pooled sweep workers);
- :mod:`repro.obs.dashboard` — a self-contained HTML report over one
  traced artifact (``bench dashboard``);
- :mod:`repro.obs.ledger` — :class:`OpLedger`, per-op latency histograms
  + wait-cause vectors keyed by (artifact, collective, size, algorithm,
  nprocs, fidelity), mergeable like registries across shards/workers;
- :mod:`repro.obs.diff` — differential comparison of two runs with
  ranked regression attribution (``bench diff``).

Everything is opt-in: with no registry and no tracer attached (the
default), instrumented components pay at most a ``None`` check.  Enable
globally with :func:`repro.obs.runtime.enable` or per-cluster with
:func:`repro.obs.runtime.attach`.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from repro.obs.spans import Span, SpanTracer
from repro.obs.export import (
    attribute_op,
    metrics_to_csv,
    phase_breakdown,
    render_phase_table,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.critpath import (
    blocking_dag,
    critical_path,
    per_node_report,
    render_critpath,
    render_per_node,
    to_collapsed_stacks,
    write_flamegraph,
)
from repro.obs.ledger import (
    LedgerEntry,
    OpLedger,
    entry_key,
    ledger_from_records,
    ledger_path_for,
)
from repro.obs.diff import (
    diff_files,
    diff_runs,
    load_run,
    metric_delta_attribution,
    render_check_attribution,
    render_diff,
    render_diff_html,
)
from repro.obs.runtime import (
    Observability,
    attach,
    disable,
    enable,
    get_global,
    is_enabled,
)
from repro.obs.timeseries import TelemetrySession
from repro.obs.dashboard import render_dashboard

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NullRegistry",
    "NULL_REGISTRY", "Span", "SpanTracer", "to_chrome_trace",
    "validate_chrome_trace", "write_chrome_trace", "metrics_to_csv",
    "attribute_op", "phase_breakdown", "render_phase_table",
    "critical_path", "blocking_dag", "render_critpath",
    "per_node_report", "render_per_node",
    "to_collapsed_stacks", "write_flamegraph",
    "LedgerEntry", "OpLedger", "entry_key", "ledger_from_records",
    "ledger_path_for",
    "diff_files", "diff_runs", "load_run", "metric_delta_attribution",
    "render_check_attribution", "render_diff", "render_diff_html",
    "Observability", "attach",
    "enable", "disable", "get_global", "is_enabled",
    "TelemetrySession", "render_dashboard",
]
