"""Differential comparison of two runs (``bench diff <a> <b>``).

Takes two saved run files — op ledgers (:mod:`repro.obs.ledger`) or the
JSON written by ``bench trace --json`` / ``bench critpath --json`` — and
produces a delta table ranked by regression magnitude, each row carrying
a wait-cause attribution of its delta::

    figX_scale/allreduce/16777216B/ring/64n/flow  +12.0% sim time:
        +9.3% wait:credit_stall, +2.1% wait:dmp_slot

Two identical runs diff to zero rows.  The same attribution logic powers
``bench check``'s failure output (:func:`render_check_attribution`): when
the regression gate trips on a scenario's ``wall_us``, the causal diff of
its ``wait_us.*`` / ``phase_us.*`` metrics prints next to the bare
number.  :func:`render_diff_html` renders the ranked table as a section
for the HTML dashboard (or a standalone page via ``bench diff --html``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

#: relative change below which two values count as identical (float noise
#: across platforms; deterministic sims produce exact zeros anyway).
IDENTICAL_REL = 1e-9

DIFF_SCHEMA = 1


# ---------------------------------------------------------------------------
# Normalized run loading
# ---------------------------------------------------------------------------

def _entries_from_ledger(doc: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    entries: Dict[str, Dict[str, Any]] = {}
    for key, data in doc.get("entries", {}).items():
        latencies = data.get("latencies", [])
        count = len(latencies)
        if not count:
            continue
        # Per-op means keep entries comparable when the two runs recorded
        # different op counts (e.g. a re-run with more iterations).
        wall_us = sum(latencies) / count * 1e6
        crit_us = {bucket: seconds / count * 1e6
                   for bucket, seconds in data.get("crit_s", {}).items()}
        entries[key] = {
            "label": key,
            "wall_us": wall_us,
            "count": count,
            "crit_us": crit_us,
            "incomplete": bool(data.get("incomplete")),
        }
    return entries


def _entries_from_ops(doc: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Normalize a trace/critpath JSON (``{"artifact", "ops": [...]}``).

    Ops are keyed by ``artifact/name#occurrence`` — stable across two runs
    of the same deterministic scenario regardless of op-id allocation.
    """
    artifact = doc.get("artifact", "?")
    entries: Dict[str, Dict[str, Any]] = {}
    seen: Dict[str, int] = {}
    for op in doc.get("ops", []):
        name = op.get("name", "?")
        index = seen.get(name, 0)
        seen[name] = index + 1
        key = f"{artifact}/{name}#{index}"
        buckets = op.get("totals") or op.get("phases") or {}
        entries[key] = {
            "label": key,
            "wall_us": op.get("wall_s", 0.0) * 1e6,
            "count": 1,
            "crit_us": {bucket: seconds * 1e6
                        for bucket, seconds in buckets.items()},
            "incomplete": bool(op.get("incomplete")),
        }
    return entries


def normalize_run(doc: Dict[str, Any], label: str = "") -> Dict[str, Any]:
    """Shape any supported run document as ``{"kind", "label", "entries"}``."""
    if "entries" in doc:
        return {"kind": "ledger", "label": label,
                "entries": _entries_from_ledger(doc)}
    if "ops" in doc:
        return {"kind": "trace", "label": label,
                "entries": _entries_from_ops(doc)}
    raise ValueError(
        f"{label or 'run document'}: neither a ledger (no 'entries') nor a "
        "trace/critpath JSON (no 'ops')")


def load_run(path: str) -> Dict[str, Any]:
    """Load and normalize one run file (ledger or trace/critpath JSON)."""
    with open(path) as fh:
        doc = json.load(fh)
    return normalize_run(doc, label=path)


# ---------------------------------------------------------------------------
# Diffing
# ---------------------------------------------------------------------------

def _cause_deltas(base: Dict[str, float], cur: Dict[str, float],
                  ref_us: float) -> List[Dict[str, Any]]:
    """Per-bucket deltas sorted by magnitude; share is relative to the
    reference wall time (so the shares of a +12% regression read as
    '+9.3% of the baseline time went to credit_stall')."""
    out = []
    for bucket in sorted(set(base) | set(cur)):
        delta = cur.get(bucket, 0.0) - base.get(bucket, 0.0)
        if abs(delta) <= IDENTICAL_REL * max(abs(ref_us), 1.0):
            continue
        out.append({
            "bucket": bucket,
            "delta_us": delta,
            "share": delta / ref_us if ref_us else 0.0,
        })
    out.sort(key=lambda c: (-abs(c["delta_us"]), c["bucket"]))
    return out


def diff_runs(a: Dict[str, Any], b: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Delta rows between two normalized runs, ranked by regression
    magnitude (absolute sim-time delta, regressions before improvements
    at equal magnitude).  Identical entries produce no row."""
    rows: List[Dict[str, Any]] = []
    ea, eb = a["entries"], b["entries"]
    for key in sorted(set(ea) | set(eb)):
        base, cur = ea.get(key), eb.get(key)
        if base is None or cur is None:
            present = cur or base
            rows.append({
                "key": key,
                "base_us": None if base is None else base["wall_us"],
                "cur_us": None if cur is None else cur["wall_us"],
                "delta_us": present["wall_us"] * (1 if base is None else -1),
                "rel": None,
                "causes": [],
                "note": "only in b" if base is None else "only in a",
                "incomplete": present.get("incomplete", False),
            })
            continue
        base_us, cur_us = base["wall_us"], cur["wall_us"]
        delta = cur_us - base_us
        ref = abs(base_us) or 1.0
        if abs(delta) <= IDENTICAL_REL * max(ref, 1.0):
            continue
        rows.append({
            "key": key,
            "base_us": base_us,
            "cur_us": cur_us,
            "delta_us": delta,
            "rel": delta / base_us if base_us else None,
            "causes": _cause_deltas(base["crit_us"], cur["crit_us"],
                                    base_us or 1.0),
            "note": "",
            "incomplete": (base.get("incomplete", False)
                           or cur.get("incomplete", False)),
        })
    rows.sort(key=lambda r: (-abs(r["delta_us"]), -(r["delta_us"] > 0),
                             r["key"]))
    return rows


def diff_files(path_a: str, path_b: str) -> Dict[str, Any]:
    """Full diff document between two run files."""
    a, b = load_run(path_a), load_run(path_b)
    rows = diff_runs(a, b)
    return {
        "schema": DIFF_SCHEMA,
        "a": path_a,
        "b": path_b,
        "kind": a["kind"] if a["kind"] == b["kind"] else "mixed",
        "entries_a": len(a["entries"]),
        "entries_b": len(b["entries"]),
        "rows": rows,
        "identical": not rows,
    }


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def _fmt_rel(rel: Optional[float]) -> str:
    return "-" if rel is None else f"{rel * 100:+.1f}%"


def _causes_text(row: Dict[str, Any], limit: int = 4) -> str:
    parts = [f"{c['share'] * 100:+.1f}% {c['bucket']}"
             for c in row["causes"][:limit]]
    return ", ".join(parts)


def render_diff(doc: Dict[str, Any], limit: int = 20) -> str:
    """Ranked delta table plus per-row cause attribution lines."""
    rows = doc["rows"]
    head = (f"diff {doc['a']} -> {doc['b']} "
            f"[{doc['kind']}: {doc['entries_a']} vs {doc['entries_b']} "
            "entries]")
    if not rows:
        return head + "\nidentical: no deltas"
    lines = [head,
             f"{len(rows)} delta(s), ranked by regression magnitude:"]
    for rank, row in enumerate(rows[:limit], 1):
        base = "-" if row["base_us"] is None else f"{row['base_us']:,.1f}"
        cur = "-" if row["cur_us"] is None else f"{row['cur_us']:,.1f}"
        note = f" [{row['note']}]" if row["note"] else ""
        flag = " [INCOMPLETE]" if row.get("incomplete") else ""
        lines.append(
            f"{rank:>3}. {row['key']}  {base} -> {cur} us "
            f"({_fmt_rel(row['rel'])}, {row['delta_us']:+,.1f} us)"
            f"{note}{flag}")
        causes = _causes_text(row)
        if causes:
            lines.append(f"       {causes}")
    if len(rows) > limit:
        lines.append(f"... {len(rows) - limit} more row(s) elided "
                     "(see --json for all)")
    return "\n".join(lines)


def render_diff_html(doc: Dict[str, Any], limit: int = 50,
                     standalone: bool = False) -> str:
    """The ranked delta table as an HTML fragment (dashboard section) or,
    with ``standalone=True``, a full self-contained page."""
    from html import escape

    rows = doc["rows"]
    if not rows:
        body = ('<p class="note">No deltas: the two runs are '
                'identical.</p>')
    else:
        cells = []
        for rank, row in enumerate(rows[:limit], 1):
            base = "-" if row["base_us"] is None else f"{row['base_us']:,.1f}"
            cur = "-" if row["cur_us"] is None else f"{row['cur_us']:,.1f}"
            color = "#b42318" if row["delta_us"] > 0 else "#027a48"
            causes = escape(_causes_text(row)) or "-"
            note = escape(row["note"] or "")
            cells.append(
                f"<tr><td class='num'>{rank}</td>"
                f"<td><code>{escape(row['key'])}</code> {note}</td>"
                f"<td class='num'>{base}</td><td class='num'>{cur}</td>"
                f"<td class='num' style='color:{color}'>"
                f"{_fmt_rel(row['rel'])}</td>"
                f"<td class='num' style='color:{color}'>"
                f"{row['delta_us']:+,.1f}</td>"
                f"<td>{causes}</td></tr>")
        more = (f'<p class="note">… {len(rows) - limit} more rows '
                "elided.</p>" if len(rows) > limit else "")
        body = (
            f'<p class="note">{escape(doc["a"])} → {escape(doc["b"])} '
            f'({len(rows)} deltas, ranked by regression magnitude).</p>'
            "<table><tr><th class='num'>#</th><th>entry</th>"
            "<th class='num'>base us</th><th class='num'>cur us</th>"
            "<th class='num'>rel</th><th class='num'>delta us</th>"
            f"<th>cause attribution</th></tr>{''.join(cells)}</table>{more}")
    if not standalone:
        return body
    from repro.obs.dashboard import _CSS

    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        "<title>repro diff</title>"
        f"<style>{_CSS}</style></head><body>"
        "<header><h1>repro · bench diff</h1>"
        f'<div class="sub">{escape(doc["a"])} → {escape(doc["b"])}'
        "</div></header>"
        f"<main><section><h2>Ranked deltas</h2>{body}</section></main>"
        "</body></html>\n")


# ---------------------------------------------------------------------------
# bench check failure attribution
# ---------------------------------------------------------------------------

def metric_delta_attribution(base_metrics: Dict[str, float],
                             cur_metrics: Dict[str, float],
                             prefixes: tuple = ("wait_us.", "phase_us."),
                             ) -> List[Dict[str, Any]]:
    """Causal attribution of a scenario-level wall-time delta from the
    flat metric dicts ``bench check`` collects: every ``wait_us.*`` /
    ``phase_us.*`` delta expressed as a share of the baseline wall."""
    wall = base_metrics.get("wall_us", 0.0) or 1.0
    out = []
    for metric in sorted(set(base_metrics) | set(cur_metrics)):
        if not metric.startswith(prefixes):
            continue
        delta = cur_metrics.get(metric, 0.0) - base_metrics.get(metric, 0.0)
        if abs(delta) <= IDENTICAL_REL * abs(wall):
            continue
        out.append({"metric": metric, "delta_us": delta,
                    "share": delta / wall})
    out.sort(key=lambda c: (-abs(c["delta_us"]), c["metric"]))
    return out


def render_check_attribution(scenario: str,
                             base_metrics: Dict[str, float],
                             cur_metrics: Dict[str, float],
                             limit: int = 4) -> str:
    """One causal-diff line for a failing ``bench check`` scenario."""
    base_wall = base_metrics.get("wall_us", 0.0)
    cur_wall = cur_metrics.get("wall_us", 0.0)
    rel = ((cur_wall - base_wall) / base_wall * 100) if base_wall else 0.0
    causes = metric_delta_attribution(base_metrics, cur_metrics)[:limit]
    if not causes:
        return (f"  {scenario}: wall {base_wall:,.1f} -> {cur_wall:,.1f} us "
                f"({rel:+.1f}%): no wait/phase metric moved — check span "
                "counts and gauge totals")
    parts = ", ".join(f"{c['share'] * 100:+.1f}% {c['metric']}"
                      for c in causes)
    return (f"  {scenario}: wall {base_wall:,.1f} -> {cur_wall:,.1f} us "
            f"({rel:+.1f}%): {parts}")
