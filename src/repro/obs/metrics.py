"""Metrics registry: typed instruments components register into.

Three instrument kinds cover everything the simulator counts today:

- :class:`Counter` — monotonically increasing totals (messages sent,
  instructions retired).  Passing the sim time to :meth:`Counter.inc`
  records a mark, enabling :meth:`Counter.rate` over any sim-time window.
- :class:`Gauge` — point-in-time values.  A gauge may be *callback-backed*
  (``fn=...``), in which case reading it samples the live component —
  existing ad-hoc counters (``link.segments_carried``,
  ``pipe.utilization()``) register as callback gauges without changing
  their hot paths at all.
- :class:`Histogram` — distribution of observations with linear-interpolated
  percentiles (the same math as :class:`repro.sim.monitor.Monitor`) and
  sim-time-windowed observation rates.

A :class:`MetricsRegistry` keys instruments by ``(name, labels)`` and
supports :meth:`~MetricsRegistry.snapshot` (a plain picklable dict) and
:meth:`~MetricsRegistry.merge` so per-worker registries from a pooled
sweep fold into one: counters add, gauges take the max, histograms
concatenate.

:data:`NULL_REGISTRY` is a shared no-op registry: code that wants to hold
an unconditional metrics handle uses it as the disabled default and every
instrument method degenerates to ``pass``.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.monitor import percentile_of

LabelKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, Any]) -> LabelKey:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def _key_str(key: LabelKey) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing total with optional sim-time marks."""

    kind = "counter"
    __slots__ = ("name", "labels", "_value", "_mark_times", "_mark_values")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._mark_times: List[float] = []
        self._mark_values: List[float] = []

    @property
    def value(self) -> float:
        return self._value

    def inc(self, n: float = 1.0, t: Optional[float] = None) -> None:
        """Add *n*; pass the sim time *t* to enable windowed rates."""
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease by {n}")
        self._value += n
        if t is not None:
            self._mark_times.append(t)
            self._mark_values.append(self._value)

    def _value_at(self, t: float) -> float:
        idx = bisect.bisect_right(self._mark_times, t)
        return self._mark_values[idx - 1] if idx else 0.0

    def rate(self, since: float, now: Optional[float] = None) -> float:
        """Increments per sim-second over ``[since, now]`` (needs marks)."""
        if not self._mark_times:
            return 0.0
        if now is None:
            now = self._mark_times[-1]
        elapsed = now - since
        if elapsed <= 0:
            return 0.0
        return (self._value_at(now) - self._value_at(since)) / elapsed


class Gauge:
    """A point-in-time value; callback-backed gauges sample live state."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_value", "fn")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = (),
                 fn: Optional[Callable[[], float]] = None):
        self.name = name
        self.labels = labels
        self.fn = fn
        self._value = 0.0

    @property
    def value(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        return self._value

    def set(self, value: float) -> None:
        if self.fn is not None:
            raise ValueError(
                f"gauge {self.name!r} is callback-backed; cannot set()")
        self._value = float(value)


class Histogram:
    """Distribution of observations with exact interpolated percentiles."""

    kind = "histogram"
    __slots__ = ("name", "labels", "_values", "_times")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self._values: List[float] = []
        self._times: List[float] = []

    def observe(self, value: float, t: Optional[float] = None) -> None:
        self._values.append(float(value))
        if t is not None:
            self._times.append(t)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    def mean(self) -> float:
        return self.total / self.count if self._values else 0.0

    def percentile(self, pct: float) -> float:
        if not self._values:
            return 0.0
        return percentile_of(self._values, pct)

    def rate(self, since: float, now: Optional[float] = None) -> float:
        """Observations per sim-second over ``[since, now]`` (needs times)."""
        if not self._times:
            return 0.0
        if now is None:
            now = self._times[-1]
        elapsed = now - since
        if elapsed <= 0:
            return 0.0
        lo = bisect.bisect_left(self._times, since)
        hi = bisect.bisect_right(self._times, now)
        return (hi - lo) / elapsed

    def summary(self) -> Dict[str, float]:
        if not self._values:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean(),
            "min": min(self._values),
            "max": max(self._values),
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Get-or-create home for instruments, keyed by ``(name, labels)``."""

    def __init__(self):
        self._metrics: Dict[LabelKey, Any] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def _get(self, cls, name: str, labels: Dict[str, Any], **kwargs):
        key = _key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {_key_str(key)!r} already registered as "
                f"{metric.kind}, not {cls.kind}")
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None,
              **labels: Any) -> Gauge:
        key = _key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = Gauge(name, key[1], fn=fn)
            self._metrics[key] = metric
        elif not isinstance(metric, Gauge):
            raise TypeError(
                f"metric {_key_str(key)!r} already registered as "
                f"{metric.kind}, not gauge")
        elif fn is not None:
            metric.fn = fn
        return metric

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)

    def metrics(self) -> List[Any]:
        return [self._metrics[k] for k in sorted(self._metrics)]

    # -- cross-process merging ---------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Plain picklable state: resolves callback gauges to values."""
        out: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for key in sorted(self._metrics):
            metric = self._metrics[key]
            ks = _key_str(key)
            if isinstance(metric, Counter):
                out["counters"][ks] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][ks] = metric.value
            else:
                out["histograms"][ks] = list(metric._values)
        return out

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a pool worker) into this
        registry: counters add, gauges keep the max, histograms extend.

        Merged instruments live under their snapshot key string, so worker
        metrics never collide with live callback gauges of the same name.
        """
        for ks, value in snapshot.get("counters", {}).items():
            self._get(Counter, ks, {}).inc(value)
        for ks, value in snapshot.get("gauges", {}).items():
            gauge = self._get(Gauge, ks, {})
            if gauge.fn is None:
                gauge.set(max(gauge.value, value))
        for ks, values in snapshot.get("histograms", {}).items():
            hist = self._get(Histogram, ks, {})
            hist._values.extend(values)

    # -- reporting ---------------------------------------------------------

    def rows(self) -> List[Dict[str, Any]]:
        """One flat row per instrument, convenient for tables and CSV."""
        rows = []
        for key in sorted(self._metrics):
            metric = self._metrics[key]
            row: Dict[str, Any] = {
                "metric": _key_str(key), "kind": metric.kind,
            }
            if isinstance(metric, Histogram):
                row.update(metric.summary())
            else:
                row["value"] = metric.value
            rows.append(row)
        return rows


class _NullInstrument:
    """Accepts every instrument method as a no-op."""

    kind = "null"
    name = "null"
    labels: Tuple = ()
    value = 0.0
    count = 0
    total = 0.0

    def inc(self, n: float = 1.0, t: Optional[float] = None) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float, t: Optional[float] = None) -> None:
        pass

    def rate(self, since: float, now: Optional[float] = None) -> float:
        return 0.0

    def percentile(self, pct: float) -> float:
        return 0.0

    def mean(self) -> float:
        return 0.0

    def summary(self) -> Dict[str, float]:
        return {"count": 0, "sum": 0.0}


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The disabled default: every instrument is the shared no-op."""

    def __len__(self) -> int:
        return 0

    def counter(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, fn: Optional[Callable] = None,
              **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def metrics(self) -> List[Any]:
        return []

    def snapshot(self) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge(self, snapshot: Dict[str, Any]) -> None:
        pass

    def rows(self) -> List[Dict[str, Any]]:
        return []


NULL_REGISTRY = NullRegistry()
