"""Critical-path extraction and wait-cause attribution (``bench critpath``).

The span tracer records two kinds of intervals per collective ``op_id``:
*productive* phase spans (uc / dmp / poe / wire — PR 3) and *wait* spans
(``phase="wait"``, ``cause=...``) recorded at every blocking site of the
engine — uC dispatch serialization, DMP slot exhaustion, operand match
stalls, Rx-pool backpressure, rendezvous handshakes, POE flow control
(TCP retransmission window / RDMA credits), link egress contention and
PCIe staging.  This module turns them into answers:

- :func:`critical_path` — one exclusive timeline over the op's wall
  window where every instant is either productive or explained by a wait
  cause.  Shares its interval sweep with
  :func:`~repro.obs.export.phase_breakdown` (both are views of
  :func:`~repro.obs.export.attribute_op`), so the cause totals reconcile
  exactly against the phase buckets and the wall sim-time.
- :func:`blocking_dag` — the op's spans as a DAG (parent edges), each
  node annotated with its cause and whether it lies on the critical path.
- :func:`to_collapsed_stacks` / :func:`write_flamegraph` — collapsed-stack
  output (``frame;frame;frame count``) for flamegraph.pl / speedscope /
  inferno; frame values are exclusive self-time in integer nanoseconds.
- :func:`per_node_report` — per-node and per-link outlier attribution
  (``bench critpath --per-node``): span time aggregated by entity with
  wait-cause breakdowns and z-score straggler flagging, for finding the
  slow node or congested uplink in a large-fabric run.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.export import attribute_op
from repro.obs.spans import Span, SpanTracer


def critical_path(tracer: SpanTracer, op_id: int) -> Dict[str, Any]:
    """Exclusive critical-path report for one collective operation.

    Returns the :func:`~repro.obs.export.attribute_op` report:
    ``segments`` (the path, contiguous over ``[t0, t1]``), ``totals``
    (exclusive seconds per bucket, summing to ``wall_s``), ``phases`` /
    ``fractions`` (bitwise-identical to ``phase_breakdown``) and
    ``wait_observed`` (raw per-cause stall unions).
    """
    return attribute_op(tracer, op_id)


def blocking_dag(tracer: SpanTracer, op_id: int) -> Dict[str, Any]:
    """The op's span graph: nodes with cause annotations, parent edges,
    and the set of span ids that carry the critical path."""
    report = attribute_op(tracer, op_id)
    on_path = {seg["sid"] for seg in report["segments"] if seg["sid"] >= 0}
    root = tracer.root_span(op_id)
    spans = [root] + [s for s in tracer.spans_for(op_id)
                      if s.sid != root.sid]
    ids = {s.sid for s in spans}
    nodes: List[Dict[str, Any]] = []
    edges: List[Dict[str, Any]] = []
    for s in spans:
        detail = dict(s.detail)
        nodes.append({
            "sid": s.sid,
            "component": s.component,
            "name": s.name,
            "phase": s.phase,
            "cause": detail.get("cause"),
            "t0": s.t0,
            "t1": s.t1 if s.closed else None,
            "dur_s": s.duration if s.closed else None,
            "on_critical_path": s.sid in on_path or s.sid == root.sid,
        })
        if s.parent >= 0 and s.parent in ids and s.sid != root.sid:
            edges.append({"src": s.sid, "dst": s.parent, "kind": "child"})
    return {"op_id": op_id, "nodes": nodes, "edges": edges,
            "critical_sids": sorted(on_path)}


def render_critpath(report: Dict[str, Any]) -> str:
    """Human-readable critical path with per-cause totals and the
    reconciliation line ``bench critpath`` prints."""
    wall_us = report["wall_s"] * 1e6
    lines = [
        f"op {report['op_id']}  {report['name']}  "
        f"wall {wall_us:.3f} us  ({report['node']}, "
        f"{report['spans']} phase spans, {report['wait_spans']} waits)",
        "  critical path:",
    ]
    base = report["t0"]
    for seg in report["segments"]:
        where = seg["component"]
        if seg["span"] and seg["span"] != seg["bucket"]:
            where = f"{where}  {seg['span']}" if where else seg["span"]
        lines.append(
            f"    {(seg['t0'] - base) * 1e6:>10.3f} .. "
            f"{(seg['t1'] - base) * 1e6:>10.3f} us  "
            f"{seg['dur_s'] * 1e6:>9.3f} us  {seg['bucket']:<22} {where}")
    totals = sorted(report["totals"].items(),
                    key=lambda kv: (-kv[1], kv[0]))
    lines.append("  totals: " + " | ".join(
        f"{bucket} {value * 1e6:.3f}us "
        f"({value / report['wall_s'] * 100 if report['wall_s'] else 0:.1f}%)"
        for bucket, value in totals if value > 0))
    observed = sorted(report["wait_observed"].items(),
                      key=lambda kv: (-kv[1], kv[0]))
    if observed:
        lines.append("  waits observed: " + " | ".join(
            f"{cause} {value * 1e6:.3f}us" for cause, value in observed))
    path_total = sum(report["totals"].values())
    phase_total = sum(report["phases"].values())
    tol = 1e-9 * max(abs(report["wall_s"]), 1e-12)
    ok = (abs(path_total - report["wall_s"]) <= tol
          and abs(phase_total - report["wall_s"]) <= tol)
    lines.append(
        f"  reconciliation: path {path_total * 1e6:.3f}us == "
        f"phase buckets {phase_total * 1e6:.3f}us == "
        f"wall {wall_us:.3f}us [{'OK' if ok else 'MISMATCH'}]")
    if report.get("incomplete"):
        lines.append("  WARNING: span ring buffer overflowed — dropped "
                     "spans are missing from these totals (INCOMPLETE)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Per-node / per-link outlier attribution
# ---------------------------------------------------------------------------

def _span_entity(component: str, name: str, cause: Optional[str]):
    """Classify one span's timeline owner.

    Link spans are recorded with the *link name* as their component —
    ``wait:link_busy`` queueing stalls (:meth:`repro.network.link.Link.send`)
    and flow-mode ``wire:burst`` occupancy — while engine spans use
    ``<node>.<component>`` names whose node prefix owns them.
    """
    if cause == "link_busy" or name == "wire:burst":
        return "link", component
    return "node", component.partition(".")[0]


def per_node_report(tracer: SpanTracer, op_ids: Iterable[int],
                    top_k: int = 10,
                    z_threshold: float = 2.5) -> Dict[str, Any]:
    """Aggregate the selected ops' spans per node and per link, flagging
    statistical stragglers.

    For every entity the report sums *raw* span time clipped to the ops'
    windows — productive time by phase, stall time by wait cause — plus
    the entity's share of the exclusive critical path
    (:func:`critical_path` segments).  Raw time is comparable across
    symmetric peers (every rank of a ring does the same work), so each
    entity gets a z-score of its total observed time against the other
    entities of its kind; ``|z| >= z_threshold`` flags it a straggler.
    An injected slow node or throttled uplink surfaces at the top of its
    table with the wait causes that explain it.
    """
    wanted = set(op_ids)
    window_by_op: Dict[int, tuple] = {}
    reports = []
    incomplete = False
    for op in sorted(wanted):
        report = attribute_op(tracer, op)
        reports.append(report)
        window_by_op[op] = (report["t0"], report["t1"])
        incomplete = incomplete or report.get("incomplete", False)

    def _clipped(span: Span) -> float:
        # Clip to the span's own op window only — concurrent ops have
        # heavily overlapping windows and clipping against the union
        # would multi-count every span.
        t0, t1 = window_by_op[span.op_id]
        lo, hi = max(span.t0, t0), min(span.t1, t1)
        return hi - lo if hi > lo else 0.0

    entities: Dict[tuple, Dict[str, Any]] = {}

    def _entity(kind: str, name: str) -> Dict[str, Any]:
        ent = entities.get((kind, name))
        if ent is None:
            ent = {"name": name, "kind": kind, "busy_s": 0.0, "wait_s": 0.0,
                   "crit_s": 0.0, "spans": 0, "causes": {}, "phases": {}}
            entities[(kind, name)] = ent
        return ent

    for span in tracer.iter_spans():
        if span.op_id not in wanted or not span.closed:
            continue
        if span.phase in ("collective", "fidelity"):
            continue
        dur = _clipped(span)
        if dur <= 0.0:
            continue
        detail = dict(span.detail)
        kind, name = _span_entity(span.component, span.name,
                                  detail.get("cause"))
        ent = _entity(kind, name)
        ent["spans"] += 1
        if span.phase == "wait":
            cause = detail.get("cause", "unknown")
            ent["wait_s"] += dur
            ent["causes"][cause] = ent["causes"].get(cause, 0.0) + dur
        else:
            ent["busy_s"] += dur
            ent["phases"][span.phase] = (
                ent["phases"].get(span.phase, 0.0) + dur)

    for report in reports:
        for seg in report["segments"]:
            if not seg["component"]:
                continue
            cause = (seg["bucket"][5:]
                     if seg["bucket"].startswith("wait:") else None)
            kind, name = _span_entity(seg["component"], seg["span"], cause)
            _entity(kind, name)["crit_s"] += seg["dur_s"]

    groups: Dict[str, List[Dict[str, Any]]] = {"node": [], "link": []}
    for ent in entities.values():
        ent["total_s"] = ent["busy_s"] + ent["wait_s"]
        groups[ent["kind"]].append(ent)
    flagged: List[str] = []
    for kind, members in groups.items():
        scores = [m["total_s"] for m in members]
        n = len(scores)
        mean = sum(scores) / n if n else 0.0
        var = sum((s - mean) ** 2 for s in scores) / n if n else 0.0
        std = math.sqrt(var)
        for member in members:
            member["z"] = (member["total_s"] - mean) / std if std > 0 else 0.0
            member["straggler"] = member["z"] >= z_threshold
            if member["straggler"]:
                flagged.append(member["name"])
        members.sort(key=lambda m: (-m["total_s"], m["name"]))

    return {
        "ops": sorted(wanted),
        "top_k": top_k,
        "z_threshold": z_threshold,
        "incomplete": incomplete,
        "nodes": groups["node"][:top_k],
        "links": groups["link"][:top_k],
        "node_count": len(groups["node"]),
        "link_count": len(groups["link"]),
        "stragglers": sorted(flagged),
    }


def _fmt_causes(totals: Dict[str, float], limit: int = 3) -> str:
    parts = sorted(totals.items(), key=lambda kv: -kv[1])[:limit]
    return " ".join(f"{name}={value * 1e6:.1f}us" for name, value in parts)


def render_per_node(report: Dict[str, Any]) -> str:
    """Fixed-width top-k tables over a :func:`per_node_report`."""
    lines = [
        f"per-node attribution over {len(report['ops'])} op(s): "
        f"{report['node_count']} nodes, {report['link_count']} links "
        f"(z-threshold {report['z_threshold']:.1f})",
    ]
    if report["incomplete"]:
        lines.append("WARNING: span ring buffer overflowed — totals are "
                     "partial (INCOMPLETE)")
    for kind, members in (("node", report["nodes"]),
                          ("link", report["links"])):
        if not members:
            continue
        header = (f"  {kind:<6} {'name':<28} {'busy_us':>10} {'wait_us':>10} "
                  f"{'crit_us':>10} {'z':>6}  top causes")
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for m in members:
            flag = " STRAGGLER" if m["straggler"] else ""
            causes = _fmt_causes(m["causes"])
            lines.append(
                f"  {kind:<6} {m['name']:<28} {m['busy_s'] * 1e6:>10.1f} "
                f"{m['wait_s'] * 1e6:>10.1f} {m['crit_s'] * 1e6:>10.1f} "
                f"{m['z']:>6.2f}  {causes}{flag}")
    if report["stragglers"]:
        lines.append("  stragglers: " + ", ".join(report["stragglers"]))
    else:
        lines.append("  no stragglers flagged")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Collapsed-stack flamegraphs
# ---------------------------------------------------------------------------

def _child_union(children, lo: float, hi: float) -> float:
    """Total time the (clipped, merged) child intervals cover in [lo, hi]."""
    ivs = sorted((max(c.t0, lo), min(c.t1, hi))
                 for c in children if c.closed and min(c.t1, hi) > max(c.t0, lo))
    total = 0.0
    cur_lo = cur_hi = None
    for a, b in ivs:
        if cur_hi is None or a > cur_hi:
            if cur_hi is not None:
                total += cur_hi - cur_lo
            cur_lo, cur_hi = a, b
        else:
            cur_hi = max(cur_hi, b)
    if cur_hi is not None:
        total += cur_hi - cur_lo
    return total


def to_collapsed_stacks(tracer: SpanTracer,
                        op_ids: Optional[Iterable[int]] = None) -> List[str]:
    """Collapsed-stack lines (``frame;frame count``), one per unique stack.

    Frames are ``component:name`` along the span's parent chain (op root
    first); counts are the span's *exclusive* self-time — duration minus
    the union of its children — in integer nanoseconds, folded across all
    selected ops.  Pipe the output through ``flamegraph.pl`` or paste it
    into https://www.speedscope.app.
    """
    spans = tracer.completed_spans
    if op_ids is not None:
        wanted = set(op_ids)
        spans = [s for s in spans if s.op_id in wanted]
    by_sid = {s.sid: s for s in spans}
    children: Dict[int, List] = {}
    for s in spans:
        if s.parent in by_sid:
            children.setdefault(s.parent, []).append(s)
    totals: Dict[str, int] = {}
    for s in spans:
        frames = []
        cur = s
        depth = 0
        while cur is not None and depth < 64:
            frames.append(f"{cur.component}:{cur.name}")
            cur = by_sid.get(cur.parent)
            depth += 1
        frames.reverse()
        self_s = s.duration - _child_union(children.get(s.sid, ()),
                                           s.t0, s.t1)
        ns = int(round(max(self_s, 0.0) * 1e9))
        if ns <= 0:
            continue
        key = ";".join(frames)
        totals[key] = totals.get(key, 0) + ns
    return [f"{stack} {ns}" for stack, ns in sorted(totals.items())]


def write_flamegraph(tracer: SpanTracer, path: str,
                     op_ids: Optional[Iterable[int]] = None) -> int:
    """Write :func:`to_collapsed_stacks` output; returns lines written."""
    lines = to_collapsed_stacks(tracer, op_ids)
    with open(path, "w") as fh:
        for line in lines:
            fh.write(line + "\n")
    return len(lines)
