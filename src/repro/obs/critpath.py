"""Critical-path extraction and wait-cause attribution (``bench critpath``).

The span tracer records two kinds of intervals per collective ``op_id``:
*productive* phase spans (uc / dmp / poe / wire — PR 3) and *wait* spans
(``phase="wait"``, ``cause=...``) recorded at every blocking site of the
engine — uC dispatch serialization, DMP slot exhaustion, operand match
stalls, Rx-pool backpressure, rendezvous handshakes, POE flow control
(TCP retransmission window / RDMA credits), link egress contention and
PCIe staging.  This module turns them into answers:

- :func:`critical_path` — one exclusive timeline over the op's wall
  window where every instant is either productive or explained by a wait
  cause.  Shares its interval sweep with
  :func:`~repro.obs.export.phase_breakdown` (both are views of
  :func:`~repro.obs.export.attribute_op`), so the cause totals reconcile
  exactly against the phase buckets and the wall sim-time.
- :func:`blocking_dag` — the op's spans as a DAG (parent edges), each
  node annotated with its cause and whether it lies on the critical path.
- :func:`to_collapsed_stacks` / :func:`write_flamegraph` — collapsed-stack
  output (``frame;frame;frame count``) for flamegraph.pl / speedscope /
  inferno; frame values are exclusive self-time in integer nanoseconds.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.obs.export import attribute_op
from repro.obs.spans import SpanTracer


def critical_path(tracer: SpanTracer, op_id: int) -> Dict[str, Any]:
    """Exclusive critical-path report for one collective operation.

    Returns the :func:`~repro.obs.export.attribute_op` report:
    ``segments`` (the path, contiguous over ``[t0, t1]``), ``totals``
    (exclusive seconds per bucket, summing to ``wall_s``), ``phases`` /
    ``fractions`` (bitwise-identical to ``phase_breakdown``) and
    ``wait_observed`` (raw per-cause stall unions).
    """
    return attribute_op(tracer, op_id)


def blocking_dag(tracer: SpanTracer, op_id: int) -> Dict[str, Any]:
    """The op's span graph: nodes with cause annotations, parent edges,
    and the set of span ids that carry the critical path."""
    report = attribute_op(tracer, op_id)
    on_path = {seg["sid"] for seg in report["segments"] if seg["sid"] >= 0}
    root = tracer.root_span(op_id)
    spans = [root] + [s for s in tracer.spans_for(op_id)
                      if s.sid != root.sid]
    ids = {s.sid for s in spans}
    nodes: List[Dict[str, Any]] = []
    edges: List[Dict[str, Any]] = []
    for s in spans:
        detail = dict(s.detail)
        nodes.append({
            "sid": s.sid,
            "component": s.component,
            "name": s.name,
            "phase": s.phase,
            "cause": detail.get("cause"),
            "t0": s.t0,
            "t1": s.t1 if s.closed else None,
            "dur_s": s.duration if s.closed else None,
            "on_critical_path": s.sid in on_path or s.sid == root.sid,
        })
        if s.parent >= 0 and s.parent in ids and s.sid != root.sid:
            edges.append({"src": s.sid, "dst": s.parent, "kind": "child"})
    return {"op_id": op_id, "nodes": nodes, "edges": edges,
            "critical_sids": sorted(on_path)}


def render_critpath(report: Dict[str, Any]) -> str:
    """Human-readable critical path with per-cause totals and the
    reconciliation line ``bench critpath`` prints."""
    wall_us = report["wall_s"] * 1e6
    lines = [
        f"op {report['op_id']}  {report['name']}  "
        f"wall {wall_us:.3f} us  ({report['node']}, "
        f"{report['spans']} phase spans, {report['wait_spans']} waits)",
        "  critical path:",
    ]
    base = report["t0"]
    for seg in report["segments"]:
        where = seg["component"]
        if seg["span"] and seg["span"] != seg["bucket"]:
            where = f"{where}  {seg['span']}" if where else seg["span"]
        lines.append(
            f"    {(seg['t0'] - base) * 1e6:>10.3f} .. "
            f"{(seg['t1'] - base) * 1e6:>10.3f} us  "
            f"{seg['dur_s'] * 1e6:>9.3f} us  {seg['bucket']:<22} {where}")
    totals = sorted(report["totals"].items(),
                    key=lambda kv: (-kv[1], kv[0]))
    lines.append("  totals: " + " | ".join(
        f"{bucket} {value * 1e6:.3f}us "
        f"({value / report['wall_s'] * 100 if report['wall_s'] else 0:.1f}%)"
        for bucket, value in totals if value > 0))
    observed = sorted(report["wait_observed"].items(),
                      key=lambda kv: (-kv[1], kv[0]))
    if observed:
        lines.append("  waits observed: " + " | ".join(
            f"{cause} {value * 1e6:.3f}us" for cause, value in observed))
    path_total = sum(report["totals"].values())
    phase_total = sum(report["phases"].values())
    tol = 1e-9 * max(abs(report["wall_s"]), 1e-12)
    ok = (abs(path_total - report["wall_s"]) <= tol
          and abs(phase_total - report["wall_s"]) <= tol)
    lines.append(
        f"  reconciliation: path {path_total * 1e6:.3f}us == "
        f"phase buckets {phase_total * 1e6:.3f}us == "
        f"wall {wall_us:.3f}us [{'OK' if ok else 'MISMATCH'}]")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Collapsed-stack flamegraphs
# ---------------------------------------------------------------------------

def _child_union(children, lo: float, hi: float) -> float:
    """Total time the (clipped, merged) child intervals cover in [lo, hi]."""
    ivs = sorted((max(c.t0, lo), min(c.t1, hi))
                 for c in children if c.closed and min(c.t1, hi) > max(c.t0, lo))
    total = 0.0
    cur_lo = cur_hi = None
    for a, b in ivs:
        if cur_hi is None or a > cur_hi:
            if cur_hi is not None:
                total += cur_hi - cur_lo
            cur_lo, cur_hi = a, b
        else:
            cur_hi = max(cur_hi, b)
    if cur_hi is not None:
        total += cur_hi - cur_lo
    return total


def to_collapsed_stacks(tracer: SpanTracer,
                        op_ids: Optional[Iterable[int]] = None) -> List[str]:
    """Collapsed-stack lines (``frame;frame count``), one per unique stack.

    Frames are ``component:name`` along the span's parent chain (op root
    first); counts are the span's *exclusive* self-time — duration minus
    the union of its children — in integer nanoseconds, folded across all
    selected ops.  Pipe the output through ``flamegraph.pl`` or paste it
    into https://www.speedscope.app.
    """
    spans = tracer.completed_spans
    if op_ids is not None:
        wanted = set(op_ids)
        spans = [s for s in spans if s.op_id in wanted]
    by_sid = {s.sid: s for s in spans}
    children: Dict[int, List] = {}
    for s in spans:
        if s.parent in by_sid:
            children.setdefault(s.parent, []).append(s)
    totals: Dict[str, int] = {}
    for s in spans:
        frames = []
        cur = s
        depth = 0
        while cur is not None and depth < 64:
            frames.append(f"{cur.component}:{cur.name}")
            cur = by_sid.get(cur.parent)
            depth += 1
        frames.reverse()
        self_s = s.duration - _child_union(children.get(s.sid, ()),
                                           s.t0, s.t1)
        ns = int(round(max(self_s, 0.0) * 1e9))
        if ns <= 0:
            continue
        key = ";".join(frames)
        totals[key] = totals.get(key, 0) + ns
    return [f"{stack} {ns}" for stack, ns in sorted(totals.items())]


def write_flamegraph(tracer: SpanTracer, path: str,
                     op_ids: Optional[Iterable[int]] = None) -> int:
    """Write :func:`to_collapsed_stacks` output; returns lines written."""
    lines = to_collapsed_stacks(tracer, op_ids)
    with open(path, "w") as fh:
        for line in lines:
            fh.write(line + "\n")
    return len(lines)
