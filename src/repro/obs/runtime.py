"""Wiring: attach an observability bundle to a built cluster.

An :class:`Observability` pairs one :class:`MetricsRegistry` with one
:class:`SpanTracer`.  :func:`attach` wires a bundle into every engine, POE,
link and endpoint of an :class:`~repro.cluster.builder.FpgaCluster`; the
module-level :func:`enable` / :func:`disable` pair makes a bundle *global*
so that every cluster built afterwards auto-attaches it (the hook in
``build_fpga_cluster`` calls :func:`auto_attach`, a no-op while disabled).

The global is process-local: a :class:`~repro.bench.runner.SweepRunner`
worker that forked after :func:`enable` carries the enabled state into its
own process, collects into its own registry, and ships a picklable
snapshot back with each point result for the parent to
:meth:`~repro.obs.metrics.MetricsRegistry.merge`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracer
from repro.obs.timeseries import TelemetrySession


class Observability:
    """One metrics registry + one span tracer, attached as a unit.

    ``telemetry_cadence`` (sim-seconds) additionally starts a
    :class:`~repro.obs.timeseries.TelemetrySession` that snapshots the
    registry continuously; ``None`` (the default) keeps telemetry off so
    plain span tracing adds no heap events.
    """

    def __init__(self, trace_capacity: int = 100_000,
                 telemetry_cadence: Optional[float] = None,
                 telemetry_capacity: int = 4096):
        self.registry = MetricsRegistry()
        self.tracer = SpanTracer(capacity=trace_capacity)
        self.telemetry: Optional[TelemetrySession] = None
        if telemetry_cadence is not None:
            self.telemetry = TelemetrySession(
                self.registry, telemetry_cadence,
                capacity=telemetry_capacity)

    def attach(self, cluster) -> "Observability":
        return attach(cluster, self)

    def summary(self) -> dict:
        """Counts for run reports: spans, events, drops, open spans."""
        out = {
            "metrics": len(self.registry),
            "trace_events": len(self.tracer),
            "spans": len(self.tracer.completed_spans),
            "unclosed_spans": self.tracer.unclosed_count,
            "events_dropped": self.tracer.dropped,
            "spans_dropped": self.tracer.spans_dropped,
        }
        if self.telemetry is not None:
            out["telemetry_samples"] = self.telemetry.samples_taken
            out["telemetry_dropped"] = self.telemetry.dropped
        return out


def attach(cluster, obs: Optional[Observability] = None) -> Observability:
    """Wire *obs* (or a fresh bundle) into every layer of *cluster*.

    Engines get the span tracer (which also feeds the flat event trace);
    engines, POEs, links and endpoints register callback gauges into the
    registry; the sim kernel's global event counters are exposed too.
    """
    if obs is None:
        obs = Observability()
    registry = obs.registry
    for node in cluster.nodes:
        node.engine.attach_tracer(obs.tracer)
        node.engine.register_metrics(registry)
    for ep in cluster.topology.endpoints:
        registry.gauge("endpoint_segments_sent",
                       fn=_count_of(ep, "segments_sent"), endpoint=ep.name)
        registry.gauge("endpoint_segments_received",
                       fn=_count_of(ep, "segments_received"),
                       endpoint=ep.name)
        if ep.uplink is not None:
            ep.uplink.register_metrics(registry, endpoint=ep.name)
    iter_links = getattr(cluster.topology, "iter_links", None)
    if iter_links is not None:
        # Links record queueing stalls as wait:link_busy spans (critical-path
        # attribution); span-less tracers leave links untraced.
        span_tracer = obs.tracer if hasattr(obs.tracer, "span_begin") else None
        for link in iter_links():
            link.bind_tracer(span_tracer)
    from repro.sim.kernel import Environment

    registry.gauge("kernel_events_processed",
                   fn=lambda: float(Environment.total_events_processed))
    registry.gauge("kernel_sim_time_s",
                   fn=lambda: Environment.total_sim_time)
    if obs.telemetry is not None:
        obs.telemetry.attach(cluster.env)
    return obs


def _count_of(obj, attr: str):
    return lambda: float(getattr(obj, attr))


# ---------------------------------------------------------------------------
# Global (process-local) enablement
# ---------------------------------------------------------------------------

_GLOBAL: Optional[Observability] = None


def enable(trace_capacity: int = 100_000,
           telemetry_cadence: Optional[float] = None) -> Observability:
    """Turn on auto-attach for every cluster built after this call."""
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = Observability(trace_capacity=trace_capacity,
                                telemetry_cadence=telemetry_cadence)
    return _GLOBAL


def disable() -> None:
    global _GLOBAL
    _GLOBAL = None


def get_global() -> Optional[Observability]:
    return _GLOBAL


def is_enabled() -> bool:
    return _GLOBAL is not None


def auto_attach(cluster) -> None:
    """Hook called by ``build_fpga_cluster``; free while disabled."""
    if _GLOBAL is not None:
        attach(cluster, _GLOBAL)


@contextmanager
def scoped(trace_capacity: int = 100_000,
           telemetry_cadence: Optional[float] = None,
           telemetry_source: str = "main") -> Iterator[Observability]:
    """Run a block against a fresh global bundle, then restore the old one.

    Used by :func:`repro.bench.runner.execute_point` so each sweep point
    collects into its own registry — the snapshot it ships back to the
    parent covers exactly that point, whether the point ran inline or in a
    forked pool worker.  A telemetry cadence (explicit, or inherited from
    the bundle being shadowed) gives the point its own
    :class:`~repro.obs.timeseries.TelemetrySession`, tagged with
    *telemetry_source* so merged series stay attributable per point.
    """
    global _GLOBAL
    prev = _GLOBAL
    if telemetry_cadence is None and prev is not None \
            and prev.telemetry is not None:
        telemetry_cadence = prev.telemetry.cadence
    _GLOBAL = Observability(trace_capacity=trace_capacity,
                            telemetry_cadence=telemetry_cadence)
    if _GLOBAL.telemetry is not None:
        _GLOBAL.telemetry.source = telemetry_source
    try:
        yield _GLOBAL
    finally:
        _GLOBAL = prev
