"""Per-op latency ledger: every collective op, keyed and mergeable.

The sweep runner and the traced scenarios both produce collective
latencies; the ledger is the durable, diffable record of them.  Each
:class:`LedgerEntry` is keyed by ``(artifact, collective, size,
algorithm, nprocs, fidelity)`` and holds

- a sim-latency :class:`~repro.obs.metrics.Histogram` (seconds per op),
- critical-path bucket totals (``wire`` / ``poe`` / ``wait:<cause>`` /
  ``dmp`` / ``uc`` / ``other``) summed over the recorded ops, and
- productive phase totals,

both taken from the shared :func:`~repro.obs.export.attribute_op` sweep,
so an entry's cause totals reconcile exactly with ``phase_breakdown`` and
with the histogram's summed wall sim-time.  Sweep points recorded through
:func:`ledger_from_records` carry the latency histogram only (plain
sweeps run with observability off); traced captures add the wait-cause
vectors via :meth:`OpLedger.record_op`.

Ledgers merge the same way registries do — histograms extend, totals
add, flags OR — so pooled workers and ``--shard`` partial runs fold into
one ledger whose totals are identical to an unsharded run's.  ``bench
all`` persists the ledger alongside ``BENCH_results.json`` (see
:func:`ledger_path_for`) and folds :meth:`OpLedger.summary` into the
trajectory; ``bench diff`` consumes the saved files
(:mod:`repro.obs.diff`).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.metrics import Histogram

LEDGER_SCHEMA = 1

#: ``BENCH_results.json`` gets its ledger as a sibling file.
DEFAULT_LEDGER_OUT = "BENCH_ledger.json"


def entry_key(artifact: str, collective: str, size: int,
              algorithm: Optional[str], nprocs: int, fidelity: str) -> str:
    """Canonical string key of one ledger entry (stable across runs)."""
    return (f"{artifact}/{collective}/{int(size)}B/"
            f"{algorithm or 'auto'}/{int(nprocs)}n/{fidelity}")


class LedgerEntry:
    """Latency distribution + attributed time for one op population."""

    __slots__ = ("artifact", "collective", "size", "algorithm", "nprocs",
                 "fidelity", "latency", "crit_s", "phase_s", "incomplete")

    def __init__(self, artifact: str, collective: str, size: int,
                 algorithm: Optional[str], nprocs: int, fidelity: str):
        self.artifact = artifact
        self.collective = collective
        self.size = int(size)
        self.algorithm = algorithm or "auto"
        self.nprocs = int(nprocs)
        self.fidelity = fidelity
        self.latency = Histogram("op_latency_s")
        self.crit_s: Dict[str, float] = {}
        self.phase_s: Dict[str, float] = {}
        self.incomplete = False

    @property
    def key(self) -> str:
        return entry_key(self.artifact, self.collective, self.size,
                         self.algorithm, self.nprocs, self.fidelity)

    @property
    def count(self) -> int:
        return self.latency.count

    def observe(self, latency_s: float,
                crit_s: Optional[Dict[str, float]] = None,
                phase_s: Optional[Dict[str, float]] = None,
                incomplete: bool = False) -> None:
        self.latency.observe(float(latency_s))
        if crit_s:
            for bucket, seconds in crit_s.items():
                self.crit_s[bucket] = self.crit_s.get(bucket, 0.0) + seconds
        if phase_s:
            for phase, seconds in phase_s.items():
                self.phase_s[phase] = self.phase_s.get(phase, 0.0) + seconds
        if incomplete:
            self.incomplete = True

    def summary(self) -> Dict[str, Any]:
        """Flat per-entry stats in microseconds (JSON/report friendly)."""
        stats = self.latency.summary()
        out: Dict[str, Any] = {
            "key": self.key,
            "artifact": self.artifact,
            "collective": self.collective,
            "size": self.size,
            "algorithm": self.algorithm,
            "nprocs": self.nprocs,
            "fidelity": self.fidelity,
            "ops": int(stats["count"]),
            "sum_us": stats["sum"] * 1e6,
        }
        for pct in ("mean", "min", "max", "p50", "p99"):
            if pct in stats:
                out[f"{pct}_us"] = stats[pct] * 1e6
        if self.crit_s:
            out["crit_us"] = {b: s * 1e6 for b, s in sorted(self.crit_s.items())}
        if self.phase_s:
            out["phase_us"] = {p: s * 1e6
                               for p, s in sorted(self.phase_s.items())}
        if self.incomplete:
            out["incomplete"] = True
        return out


class OpLedger:
    """Keyed collection of :class:`LedgerEntry`, mergeable like a registry."""

    def __init__(self, fidelity: Optional[str] = None):
        if fidelity is None:
            from repro.network.fidelity import default_fidelity

            fidelity = default_fidelity()
        self.fidelity = fidelity
        self.entries: Dict[str, LedgerEntry] = {}

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def ops(self) -> int:
        return sum(e.count for e in self.entries.values())

    def entry(self, artifact: str, collective: str, size: int,
              algorithm: Optional[str] = None, nprocs: int = 0,
              fidelity: Optional[str] = None) -> LedgerEntry:
        """Get-or-create the entry for one op population."""
        fidelity = fidelity or self.fidelity
        key = entry_key(artifact, collective, size, algorithm, nprocs,
                        fidelity)
        ent = self.entries.get(key)
        if ent is None:
            ent = LedgerEntry(artifact, collective, size, algorithm, nprocs,
                              fidelity)
            self.entries[key] = ent
        return ent

    def observe(self, latency_s: float, *, artifact: str, collective: str,
                size: int, nprocs: int, algorithm: Optional[str] = None,
                fidelity: Optional[str] = None,
                crit_s: Optional[Dict[str, float]] = None,
                phase_s: Optional[Dict[str, float]] = None,
                incomplete: bool = False) -> LedgerEntry:
        """Record one op's latency (and optional attribution vectors)."""
        ent = self.entry(artifact, collective, size, algorithm, nprocs,
                         fidelity)
        ent.observe(latency_s, crit_s=crit_s, phase_s=phase_s,
                    incomplete=incomplete)
        return ent

    def record_op(self, tracer, op_id: int, *, artifact: str, nprocs: int,
                  size: Optional[int] = None,
                  algorithm: Optional[str] = None,
                  fidelity: Optional[str] = None) -> Dict[str, Any]:
        """Record one traced collective via the shared ``attribute_op``
        sweep; the entry's wait-cause totals therefore reconcile exactly
        with ``phase_breakdown`` and the op's wall sim-time.  Returns the
        attribution report."""
        from repro.obs.export import attribute_op

        report = attribute_op(tracer, op_id)
        name = report["name"]
        collective = name.partition(":")[2] or name
        if size is None:
            root = tracer.root_span(op_id)
            detail = dict(root.detail) if root is not None else {}
            size = int(detail.get("nbytes", 0))
        self.observe(report["wall_s"], artifact=artifact,
                     collective=collective, size=size, nprocs=nprocs,
                     algorithm=algorithm, fidelity=fidelity,
                     crit_s=report["totals"], phase_s=report["phases"],
                     incomplete=report.get("incomplete", False))
        return report

    # -- merging (registry idiom: histograms extend, totals add) -----------

    def snapshot(self) -> Dict[str, Any]:
        """Plain picklable/JSON state of the whole ledger."""
        entries: Dict[str, Any] = {}
        for key in sorted(self.entries):
            ent = self.entries[key]
            entries[key] = {
                "artifact": ent.artifact,
                "collective": ent.collective,
                "size": ent.size,
                "algorithm": ent.algorithm,
                "nprocs": ent.nprocs,
                "fidelity": ent.fidelity,
                "latencies": list(ent.latency._values),
                "crit_s": dict(sorted(ent.crit_s.items())),
                "phase_s": dict(sorted(ent.phase_s.items())),
                "incomplete": ent.incomplete,
            }
        return {"schema": LEDGER_SCHEMA, "fidelity": self.fidelity,
                "entries": entries}

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` (another worker's or shard's ledger)
        into this one: latency histograms extend, attributed totals add,
        the incomplete flag ORs."""
        for data in snapshot.get("entries", {}).values():
            ent = self.entry(data["artifact"], data["collective"],
                             data["size"], data.get("algorithm"),
                             data.get("nprocs", 0), data.get("fidelity"))
            ent.latency._values.extend(data.get("latencies", ()))
            for bucket, seconds in data.get("crit_s", {}).items():
                ent.crit_s[bucket] = ent.crit_s.get(bucket, 0.0) + seconds
            for phase, seconds in data.get("phase_s", {}).items():
                ent.phase_s[phase] = ent.phase_s.get(phase, 0.0) + seconds
            if data.get("incomplete"):
                ent.incomplete = True

    # -- persistence --------------------------------------------------------

    def save(self, path: str) -> int:
        """Write the ledger as JSON; returns the entry count."""
        with open(path, "w") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return len(self.entries)

    @classmethod
    def load(cls, path: str) -> "OpLedger":
        with open(path) as fh:
            doc = json.load(fh)
        return cls.from_snapshot(doc)

    @classmethod
    def from_snapshot(cls, doc: Dict[str, Any]) -> "OpLedger":
        ledger = cls(fidelity=doc.get("fidelity", "packet"))
        ledger.merge(doc)
        return ledger

    # -- reporting ----------------------------------------------------------

    def rows(self) -> List[Dict[str, Any]]:
        """One :meth:`LedgerEntry.summary` row per entry, sorted by key."""
        return [self.entries[key].summary() for key in sorted(self.entries)]

    def summary(self) -> Dict[str, Any]:
        """Per-artifact distribution stats for ``BENCH_results.json``:
        op count and p50/p99 latency (microseconds) per artifact."""
        per_artifact: Dict[str, List[float]] = {}
        for ent in self.entries.values():
            per_artifact.setdefault(ent.artifact, []).extend(
                ent.latency._values)
        artifacts: Dict[str, Any] = {}
        for artifact in sorted(per_artifact):
            values = per_artifact[artifact]
            hist = Histogram("ledger")
            hist._values = values
            artifacts[artifact] = {
                "ops": len(values),
                "p50_us": hist.percentile(50) * 1e6,
                "p99_us": hist.percentile(99) * 1e6,
                "mean_us": hist.mean() * 1e6,
            }
        return {"schema": LEDGER_SCHEMA, "fidelity": self.fidelity,
                "ops": self.ops, "entries": len(self.entries),
                "artifacts": artifacts}


# ---------------------------------------------------------------------------
# Construction from sweep records
# ---------------------------------------------------------------------------

#: point parameter names probed (in order) for each ledger key field.
_COLLECTIVE_PARAMS = ("opcode",)
_NPROCS_PARAMS = ("n_nodes", "n_ranks", "ranks")
_SIZE_PARAMS = ("size", "nbytes")


def ledger_from_records(records, fidelity: Optional[str] = None) -> OpLedger:
    """Build a ledger from :class:`~repro.bench.runner.PointResult` records.

    Every record whose value is a plain latency (a float, seconds) and
    whose parameters name a collective becomes one observation; dict- or
    list-valued kernels (breakdown tables, app results) are skipped.
    Cached and merged shard records carry the same values as fresh ones,
    so a warm, sharded, or ``bench merge`` run produces a ledger with
    totals identical to a cold unsharded run.
    """
    ledger = OpLedger(fidelity=fidelity)
    for rec in records:
        if getattr(rec, "skipped", False):
            continue
        value = rec.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        params = rec.point.kwargs()
        collective = next((params[p] for p in _COLLECTIVE_PARAMS
                           if p in params), None)
        if collective is None:
            if rec.point.kernel in ("accl_p2p", "mpi_p2p"):
                collective = "sendrecv"
            else:
                continue
        nprocs = next((params[p] for p in _NPROCS_PARAMS if p in params), 0)
        size = next((params[p] for p in _SIZE_PARAMS if p in params), 0)
        ledger.observe(float(value), artifact=rec.point.artifact,
                       collective=str(collective), size=int(size),
                       nprocs=int(nprocs),
                       algorithm=params.get("algorithm"))
    return ledger


def ledger_path_for(json_out: str) -> str:
    """The ledger file persisted alongside a trajectory JSON:
    ``BENCH_results.json`` maps to ``BENCH_ledger.json``; any other
    ``X.json`` maps to ``X_ledger.json``."""
    import os.path

    head, tail = os.path.split(json_out)
    if tail == "BENCH_results.json":
        return os.path.join(head, DEFAULT_LEDGER_OUT)
    stem = tail[:-5] if tail.endswith(".json") else tail
    return os.path.join(head, f"{stem}_ledger.json")
