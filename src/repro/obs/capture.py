"""Traced replays of small evaluation scenarios (the ``bench trace`` CLI).

The sweep artifacts (fig07 …) run thousands of collectives — too much to
look at in a trace viewer.  ``trace_artifact(name)`` instead replays one
*representative* scenario of an artifact with a span tracer attached and
returns the capture: open the exported Chrome JSON in Perfetto to see the
collective's uC / DMP / POE / wire phases laid out per node, or read the
:func:`~repro.obs.export.phase_breakdown` table the CLI prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

import numpy as np

from repro import units
from repro.obs.export import phase_breakdown
from repro.obs.runtime import Observability, attach
from repro.sim import all_of


@dataclass
class TraceCapture:
    """One traced scenario: the bundle plus what ran."""

    artifact: str
    description: str
    obs: Observability
    op_ids: List[int] = field(default_factory=list)

    @property
    def tracer(self):
        return self.obs.tracer

    def breakdowns(self) -> List[Dict[str, Any]]:
        return [phase_breakdown(self.obs.tracer, op) for op in self.op_ids]


def _traced_cluster(n_nodes: int, protocol: str = "rdma",
                    platform: str = "coyote"):
    from repro.cluster.builder import build_fpga_cluster
    from repro.driver.api import attach_drivers

    cluster = build_fpga_cluster(n_nodes, protocol=protocol,
                                 platform=platform)
    obs = attach(cluster)
    return cluster, obs, attach_drivers(cluster)


def _drain(cluster, requests) -> None:
    cluster.env.run(until=all_of(cluster.env,
                                 [r.event for r in requests]))


def _trace_fig08(**_: Any) -> TraceCapture:
    """Invocation latency: host nop calls — pure uC dispatch, no wire."""
    cluster, obs, drivers = _traced_cluster(2)
    for driver in drivers:
        _drain(cluster, [driver.nop()])
    return TraceCapture(
        "fig08", "host nop invocations on 2 nodes (uC dispatch only)",
        obs, obs.tracer.op_ids())


def _trace_fig07(**_: Any) -> TraceCapture:
    """Send/recv throughput: a small (eager) and a large (rendezvous)
    transfer, back to back — the protocol switch is visible in the trace."""
    cluster, obs, drivers = _traced_cluster(2)
    for tag, nbytes in ((7, 16 * units.KIB), (8, units.MIB)):
        data = np.ones(nbytes // 4, dtype=np.float32)
        _drain(cluster, [
            drivers[0].send(drivers[0].wrap(data), nbytes, dst=1, tag=tag),
            drivers[1].recv(drivers[1].alloc(nbytes), nbytes, src=0,
                            tag=tag),
        ])
    return TraceCapture(
        "fig07", "eager (16 KiB) + rendezvous (1 MiB) send/recv on 2 nodes",
        obs, obs.tracer.op_ids())


def _trace_allreduce(nbytes: int = 64 * units.KIB, n_nodes: int = 4,
                     **_: Any) -> TraceCapture:
    """One cluster-wide allreduce — the richest per-phase picture."""
    cluster, obs, drivers = _traced_cluster(n_nodes)
    data = np.ones(nbytes // 4, dtype=np.float32)
    _drain(cluster, [
        d.allreduce(d.wrap(data), d.alloc(nbytes), nbytes) for d in drivers
    ])
    return TraceCapture(
        "allreduce", f"{n_nodes}-node allreduce of {nbytes} B",
        obs, obs.tracer.op_ids())


_SCENARIOS = {
    "fig08": _trace_fig08,
    "fig07": _trace_fig07,
    "allreduce": _trace_allreduce,
    "fig10": _trace_allreduce,
}


def traceable_artifacts() -> List[str]:
    return sorted(_SCENARIOS)


def trace_artifact(name: str, **kwargs: Any) -> TraceCapture:
    """Replay artifact *name*'s representative scenario under a tracer."""
    try:
        fn = _SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"no traced scenario for {name!r}; available: "
            f"{', '.join(traceable_artifacts())}") from None
    return fn(**kwargs)
