"""Traced replays of small evaluation scenarios (the ``bench trace`` CLI).

The sweep artifacts (fig07 …) run thousands of collectives — too much to
look at in a trace viewer.  ``trace_artifact(name)`` instead replays one
*representative* scenario of an artifact with a span tracer attached and
returns the capture: open the exported Chrome JSON in Perfetto to see the
collective's uC / DMP / POE / wire phases laid out per node, or read the
:func:`~repro.obs.export.phase_breakdown` table the CLI prints.

Every scenario accepts ``telemetry=<cadence-seconds>`` to also record a
continuous :class:`~repro.obs.timeseries.TelemetrySession` alongside the
spans (``bench dashboard`` uses this).  Scenarios run at the process-wide
fidelity (``REPRO_FIDELITY``); fig07's 16 MiB leg and fig12 are large
enough to engage the flow fast-forward path when it is on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro import units
from repro.obs.export import phase_breakdown
from repro.obs.runtime import Observability, attach
from repro.sim import all_of


@dataclass
class TraceCapture:
    """One traced scenario: the bundle plus what ran."""

    artifact: str
    description: str
    obs: Observability
    op_ids: List[int] = field(default_factory=list)
    n_nodes: int = 0

    @property
    def tracer(self):
        return self.obs.tracer

    def breakdowns(self) -> List[Dict[str, Any]]:
        return [phase_breakdown(self.obs.tracer, op) for op in self.op_ids]

    def ledger(self, fidelity: Optional[str] = None):
        """The capture's ops folded into a fresh :class:`OpLedger` —
        latency histograms plus wait-cause vectors per entry."""
        from repro.obs.ledger import OpLedger

        ledger = OpLedger(fidelity=fidelity)
        for op_id in self.op_ids:
            ledger.record_op(self.tracer, op_id, artifact=self.artifact,
                             nprocs=self.n_nodes)
        return ledger


def _traced_cluster(n_nodes: int, protocol: str = "rdma",
                    platform: str = "coyote",
                    telemetry: Optional[float] = None):
    from repro.cluster.builder import build_fpga_cluster
    from repro.driver.api import attach_drivers

    cluster = build_fpga_cluster(n_nodes, protocol=protocol,
                                 platform=platform)
    obs = attach(cluster, Observability(telemetry_cadence=telemetry))
    return cluster, obs, attach_drivers(cluster)


def _drain(cluster, requests, obs: Optional[Observability] = None) -> None:
    if obs is not None and obs.telemetry is not None:
        obs.telemetry.poke()
    cluster.env.run(until=all_of(cluster.env,
                                 [r.event for r in requests]))


def _trace_fig08(telemetry: Optional[float] = None, **_: Any) -> TraceCapture:
    """Invocation latency: host nop calls — pure uC dispatch, no wire."""
    cluster, obs, drivers = _traced_cluster(2, telemetry=telemetry)
    for driver in drivers:
        _drain(cluster, [driver.nop()], obs)
    return TraceCapture(
        "fig08", "host nop invocations on 2 nodes (uC dispatch only)",
        obs, obs.tracer.op_ids(), n_nodes=2)


def _trace_fig07(telemetry: Optional[float] = None, **_: Any) -> TraceCapture:
    """Send/recv throughput: a small (eager), a large (rendezvous) and a
    bulk (flow-eligible) transfer, back to back — the eager/rendezvous
    protocol switch and, under ``REPRO_FIDELITY=flow``, the burst
    fast-forward path are all visible in one trace."""
    cluster, obs, drivers = _traced_cluster(2, telemetry=telemetry)
    for tag, nbytes in ((7, 16 * units.KIB), (8, units.MIB),
                        (9, 16 * units.MIB)):
        data = np.ones(nbytes // 4, dtype=np.float32)
        _drain(cluster, [
            drivers[0].send(drivers[0].wrap(data), nbytes, dst=1, tag=tag),
            drivers[1].recv(drivers[1].alloc(nbytes), nbytes, src=0,
                            tag=tag),
        ], obs)
    return TraceCapture(
        "fig07",
        "eager (16 KiB) + rendezvous (1 MiB) + bulk (16 MiB) send/recv "
        "on 2 nodes",
        obs, obs.tracer.op_ids(), n_nodes=2)


def _trace_allreduce(nbytes: int = 64 * units.KIB, n_nodes: int = 4,
                     telemetry: Optional[float] = None,
                     **_: Any) -> TraceCapture:
    """One cluster-wide allreduce — the richest per-phase picture."""
    cluster, obs, drivers = _traced_cluster(n_nodes, telemetry=telemetry)
    data = np.ones(nbytes // 4, dtype=np.float32)
    _drain(cluster, [
        d.allreduce(d.wrap(data), d.alloc(nbytes), nbytes) for d in drivers
    ], obs)
    return TraceCapture(
        "allreduce", f"{n_nodes}-node allreduce of {nbytes} B",
        obs, obs.tracer.op_ids(), n_nodes=n_nodes)


def _trace_fig12(nbytes: int = 32 * units.MIB, n_nodes: int = 4,
                 telemetry: Optional[float] = None,
                 **_: Any) -> TraceCapture:
    """Bulk reduce to a root: ring chunks at the flow admission floor.

    A 32 MiB reduce across 4 nodes moves 8 MiB ring chunks — exactly the
    flow fast-forward floor — so under ``REPRO_FIDELITY=flow`` every bulk
    hop runs the burst admission/re-admission pipeline; under packet
    fidelity it is the heaviest traced scenario."""
    cluster, obs, drivers = _traced_cluster(n_nodes, telemetry=telemetry)
    data = np.ones(nbytes // 4, dtype=np.float32)
    _drain(cluster, [
        d.reduce(d.wrap(data), d.alloc(nbytes), nbytes, 0) for d in drivers
    ], obs)
    return TraceCapture(
        "fig12", f"{n_nodes}-node reduce of {nbytes} B to root 0",
        obs, obs.tracer.op_ids(), n_nodes=n_nodes)


def throttle_links(cluster, pattern: str, factor: float) -> List[str]:
    """Divide the bandwidth of every fabric link whose name contains
    *pattern* by *factor* (fault injection for straggler studies).

    Must run after the cluster is built but before traffic starts — both
    the link's admission-rate field and its bandwidth pipe are rescaled,
    so packet serialisation and flow bursts slow down alike.  Returns the
    throttled link names; raises if the pattern matches nothing.
    """
    hits: List[str] = []
    for link in cluster.topology.iter_links():
        if pattern in link.name:
            link.rate /= factor
            link._pipe.rate /= factor
            hits.append(link.name)
    if not hits:
        names = sorted(l.name for l in cluster.topology.iter_links())
        raise ValueError(
            f"slow_link pattern {pattern!r} matched no link; fabric has: "
            f"{', '.join(names[:12])}{' ...' if len(names) > 12 else ''}")
    return hits


def _trace_figX_scale(n_nodes: int = 16, size: int = units.MIB,
                      fabric: str = "fattree",
                      slow_link: Optional[str] = None,
                      slow_factor: float = 8.0,
                      telemetry: Optional[float] = None,
                      **_: Any) -> TraceCapture:
    """One scale-study leg under a tracer: bcast + two allreduces on a
    real multi-tier fabric.

    Unlike the 2–4 node star scenarios above, this builds the same
    fat-tree/leaf-spine/dragonfly fabrics as ``figX_scale``, so per-node
    and per-link attribution has real switches and uplinks to blame.
    Traffic is binomial-tree bcasts at two sizes: every non-root endpoint
    receives exactly one message per op, so per-endpoint load is uniform
    and an outlier node or link is an anomaly, not an artifact of the
    traffic pattern (root-centric collectives would drown it in root-link
    congestion, and packet-fidelity ring collectives are too slow at this
    scale).  Pass ``slow_link=<name-substring>`` (e.g. ``fpga137.down``)
    with ``slow_factor`` to throttle matching links before traffic starts
    — the injected straggler that ``bench critpath --per-node`` must find.
    """
    from repro.bench.harness import scale_topology_factory
    from repro.cluster.builder import build_fpga_cluster
    from repro.driver.api import attach_drivers

    n_nodes, size = int(n_nodes), int(size)
    slow_factor = float(slow_factor)
    factory = scale_topology_factory(fabric, n_nodes)
    cluster = build_fpga_cluster(n_nodes, topology_factory=factory,
                                 peering="lazy")
    obs = attach(cluster, Observability(
        trace_capacity=max(200_000, n_nodes * 4_000),
        telemetry_cadence=telemetry))
    throttled: List[str] = []
    if slow_link:
        throttled = throttle_links(cluster, str(slow_link), slow_factor)
    drivers = attach_drivers(cluster)
    for nbytes in (size, max(size // 4, 256)):
        chunk = np.ones(nbytes // 4, dtype=np.float32)
        _drain(cluster, [
            d.bcast(d.wrap(chunk) if i == 0 else d.alloc(nbytes),
                    nbytes, 0)
            for i, d in enumerate(drivers)
        ], obs)
    desc = (f"{n_nodes}-node {fabric} scale leg: bcasts of {size} and "
            f"{max(size // 4, 256)} B")
    if throttled:
        desc += (f" [slowed x{slow_factor:g}: "
                 f"{', '.join(throttled[:4])}"
                 f"{' ...' if len(throttled) > 4 else ''}]")
    return TraceCapture("figX_scale", desc, obs, obs.tracer.op_ids(),
                        n_nodes=n_nodes)


_SCENARIOS = {
    "fig08": _trace_fig08,
    "fig07": _trace_fig07,
    "allreduce": _trace_allreduce,
    "fig10": _trace_allreduce,
    "fig12": _trace_fig12,
    "figX_scale": _trace_figX_scale,
}


def traceable_artifacts() -> List[str]:
    return sorted(_SCENARIOS)


def trace_artifact(name: str, **kwargs: Any) -> TraceCapture:
    """Replay artifact *name*'s representative scenario under a tracer."""
    try:
        fn = _SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"no traced scenario for {name!r}; available: "
            f"{', '.join(traceable_artifacts())}") from None
    return fn(**kwargs)
