"""Traced replays of small evaluation scenarios (the ``bench trace`` CLI).

The sweep artifacts (fig07 …) run thousands of collectives — too much to
look at in a trace viewer.  ``trace_artifact(name)`` instead replays one
*representative* scenario of an artifact with a span tracer attached and
returns the capture: open the exported Chrome JSON in Perfetto to see the
collective's uC / DMP / POE / wire phases laid out per node, or read the
:func:`~repro.obs.export.phase_breakdown` table the CLI prints.

Every scenario accepts ``telemetry=<cadence-seconds>`` to also record a
continuous :class:`~repro.obs.timeseries.TelemetrySession` alongside the
spans (``bench dashboard`` uses this).  Scenarios run at the process-wide
fidelity (``REPRO_FIDELITY``); fig07's 16 MiB leg and fig12 are large
enough to engage the flow fast-forward path when it is on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro import units
from repro.obs.export import phase_breakdown
from repro.obs.runtime import Observability, attach
from repro.sim import all_of


@dataclass
class TraceCapture:
    """One traced scenario: the bundle plus what ran."""

    artifact: str
    description: str
    obs: Observability
    op_ids: List[int] = field(default_factory=list)

    @property
    def tracer(self):
        return self.obs.tracer

    def breakdowns(self) -> List[Dict[str, Any]]:
        return [phase_breakdown(self.obs.tracer, op) for op in self.op_ids]


def _traced_cluster(n_nodes: int, protocol: str = "rdma",
                    platform: str = "coyote",
                    telemetry: Optional[float] = None):
    from repro.cluster.builder import build_fpga_cluster
    from repro.driver.api import attach_drivers

    cluster = build_fpga_cluster(n_nodes, protocol=protocol,
                                 platform=platform)
    obs = attach(cluster, Observability(telemetry_cadence=telemetry))
    return cluster, obs, attach_drivers(cluster)


def _drain(cluster, requests, obs: Optional[Observability] = None) -> None:
    if obs is not None and obs.telemetry is not None:
        obs.telemetry.poke()
    cluster.env.run(until=all_of(cluster.env,
                                 [r.event for r in requests]))


def _trace_fig08(telemetry: Optional[float] = None, **_: Any) -> TraceCapture:
    """Invocation latency: host nop calls — pure uC dispatch, no wire."""
    cluster, obs, drivers = _traced_cluster(2, telemetry=telemetry)
    for driver in drivers:
        _drain(cluster, [driver.nop()], obs)
    return TraceCapture(
        "fig08", "host nop invocations on 2 nodes (uC dispatch only)",
        obs, obs.tracer.op_ids())


def _trace_fig07(telemetry: Optional[float] = None, **_: Any) -> TraceCapture:
    """Send/recv throughput: a small (eager), a large (rendezvous) and a
    bulk (flow-eligible) transfer, back to back — the eager/rendezvous
    protocol switch and, under ``REPRO_FIDELITY=flow``, the burst
    fast-forward path are all visible in one trace."""
    cluster, obs, drivers = _traced_cluster(2, telemetry=telemetry)
    for tag, nbytes in ((7, 16 * units.KIB), (8, units.MIB),
                        (9, 16 * units.MIB)):
        data = np.ones(nbytes // 4, dtype=np.float32)
        _drain(cluster, [
            drivers[0].send(drivers[0].wrap(data), nbytes, dst=1, tag=tag),
            drivers[1].recv(drivers[1].alloc(nbytes), nbytes, src=0,
                            tag=tag),
        ], obs)
    return TraceCapture(
        "fig07",
        "eager (16 KiB) + rendezvous (1 MiB) + bulk (16 MiB) send/recv "
        "on 2 nodes",
        obs, obs.tracer.op_ids())


def _trace_allreduce(nbytes: int = 64 * units.KIB, n_nodes: int = 4,
                     telemetry: Optional[float] = None,
                     **_: Any) -> TraceCapture:
    """One cluster-wide allreduce — the richest per-phase picture."""
    cluster, obs, drivers = _traced_cluster(n_nodes, telemetry=telemetry)
    data = np.ones(nbytes // 4, dtype=np.float32)
    _drain(cluster, [
        d.allreduce(d.wrap(data), d.alloc(nbytes), nbytes) for d in drivers
    ], obs)
    return TraceCapture(
        "allreduce", f"{n_nodes}-node allreduce of {nbytes} B",
        obs, obs.tracer.op_ids())


def _trace_fig12(nbytes: int = 32 * units.MIB, n_nodes: int = 4,
                 telemetry: Optional[float] = None,
                 **_: Any) -> TraceCapture:
    """Bulk reduce to a root: ring chunks at the flow admission floor.

    A 32 MiB reduce across 4 nodes moves 8 MiB ring chunks — exactly the
    flow fast-forward floor — so under ``REPRO_FIDELITY=flow`` every bulk
    hop runs the burst admission/re-admission pipeline; under packet
    fidelity it is the heaviest traced scenario."""
    cluster, obs, drivers = _traced_cluster(n_nodes, telemetry=telemetry)
    data = np.ones(nbytes // 4, dtype=np.float32)
    _drain(cluster, [
        d.reduce(d.wrap(data), d.alloc(nbytes), nbytes, 0) for d in drivers
    ], obs)
    return TraceCapture(
        "fig12", f"{n_nodes}-node reduce of {nbytes} B to root 0",
        obs, obs.tracer.op_ids())


_SCENARIOS = {
    "fig08": _trace_fig08,
    "fig07": _trace_fig07,
    "allreduce": _trace_allreduce,
    "fig10": _trace_allreduce,
    "fig12": _trace_fig12,
}


def traceable_artifacts() -> List[str]:
    return sorted(_SCENARIOS)


def trace_artifact(name: str, **kwargs: Any) -> TraceCapture:
    """Replay artifact *name*'s representative scenario under a tracer."""
    try:
        fn = _SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"no traced scenario for {name!r}; available: "
            f"{', '.join(traceable_artifacts())}") from None
    return fn(**kwargs)
