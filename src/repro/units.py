"""Unit helpers.

Simulation time is seconds; sizes are bytes.  These helpers keep calibration
constants readable (``us(2.3)``, ``gbps(100)``) and conversions honest.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


def ns(value: float) -> float:
    """Nanoseconds -> seconds."""
    return value * 1e-9


def us(value: float) -> float:
    """Microseconds -> seconds."""
    return value * 1e-6


def ms(value: float) -> float:
    """Milliseconds -> seconds."""
    return value * 1e-3


def to_us(seconds: float) -> float:
    """Seconds -> microseconds."""
    return seconds * 1e6


def to_ms(seconds: float) -> float:
    """Seconds -> milliseconds."""
    return seconds * 1e3


def gbps(value: float) -> float:
    """Gigabits per second -> bytes per second."""
    return value * 1e9 / 8


def gibps(value: float) -> float:
    """Gibibytes per second -> bytes per second."""
    return value * GIB


def to_gbps(bytes_per_s: float) -> float:
    """Bytes per second -> gigabits per second."""
    return bytes_per_s * 8 / 1e9


def cycles(count: float, freq_hz: float) -> float:
    """Clock cycles at *freq_hz* -> seconds."""
    if freq_hz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_hz}")
    return count / freq_hz


def pretty_size(nbytes: int) -> str:
    """Human-readable byte size: 1024 -> '1KiB'."""
    if nbytes < 0:
        raise ValueError(f"negative size: {nbytes}")
    if nbytes >= GIB and nbytes % GIB == 0:
        return f"{nbytes // GIB}GiB"
    if nbytes >= MIB and nbytes % MIB == 0:
        return f"{nbytes // MIB}MiB"
    if nbytes >= KIB and nbytes % KIB == 0:
        return f"{nbytes // KIB}KiB"
    return f"{nbytes}B"
