"""Memory subsystem models: HBM / DDR / BRAM / host DRAM and PCIe.

Each memory is a :class:`Memory` with a byte-pipe port model (bandwidth +
access latency) and a capacity-tracking allocator.  :class:`PcieLink` models
the host<->FPGA DMA path used by staging (Vitis) and unified memory (Coyote).
"""

from repro.memory.model import Allocation, Memory, hbm_stack, host_dram, fpga_ddr, bram
from repro.memory.pcie import PcieLink

__all__ = [
    "Memory",
    "Allocation",
    "PcieLink",
    "hbm_stack",
    "host_dram",
    "fpga_ddr",
    "bram",
]
