"""PCIe Gen3 x16 model: DMA pipes plus MMIO register access.

Three costs matter for the paper's results:

- bulk DMA bandwidth (~13 GB/s effective) — staging cost on Vitis, unified
  memory cost on Coyote, and the F2F baseline's FPGA->CPU->FPGA detour;
- DMA setup latency (~0.9 us);
- MMIO register read/write (~0.9 us each) — a Coyote CCLO invocation is one
  posted write plus one read (Fig 8).
"""

from __future__ import annotations

from repro.sim import BandwidthResource, Environment, Event
from repro import units


class PcieLink:
    """Duplex host<->device PCIe connection."""

    #: effective bulk bandwidth per direction (Gen3 x16 after framing)
    DEFAULT_BANDWIDTH = 13e9
    #: DMA descriptor setup + completion latency
    DEFAULT_DMA_LATENCY = units.ns(900)
    #: one MMIO register access (posted write or non-posted read)
    DEFAULT_MMIO_LATENCY = units.us(0.9)

    def __init__(
        self,
        env: Environment,
        bandwidth: float = DEFAULT_BANDWIDTH,
        dma_latency: float = DEFAULT_DMA_LATENCY,
        mmio_latency: float = DEFAULT_MMIO_LATENCY,
        name: str = "pcie",
    ):
        self.env = env
        self.dma_latency = dma_latency
        self.mmio_latency = mmio_latency
        self.name = name
        self._h2d = BandwidthResource(env, bandwidth, name=f"{name}.h2d")
        self._d2h = BandwidthResource(env, bandwidth, name=f"{name}.d2h")

    @property
    def bytes_h2d(self) -> int:
        return self._h2d.bytes_moved

    @property
    def bytes_d2h(self) -> int:
        return self._d2h.bytes_moved

    def _dma_delay(self, pipe: BandwidthResource, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError(f"negative DMA size: {nbytes}")
        return pipe.reserve(nbytes) + self.dma_latency - self.env.now

    def dma_h2d(self, nbytes: int) -> Event:
        """Host -> device DMA; event fires at completion."""
        return self.env.timeout(self._dma_delay(self._h2d, nbytes),
                                value=nbytes)

    def dma_d2h(self, nbytes: int) -> Event:
        """Device -> host DMA; event fires at completion."""
        return self.env.timeout(self._dma_delay(self._d2h, nbytes),
                                value=nbytes)

    def dma_h2d_delay(self, nbytes: int) -> float:
        """Like :meth:`dma_h2d` but returns the delay without an event."""
        return self._dma_delay(self._h2d, nbytes)

    def dma_d2h_delay(self, nbytes: int) -> float:
        """Like :meth:`dma_d2h` but returns the delay without an event."""
        return self._dma_delay(self._d2h, nbytes)

    def dma_time(self, nbytes: int, direction: str = "h2d") -> float:
        """Analytic one-shot DMA duration on an idle link."""
        return self.dma_latency + nbytes / (
            self._h2d.rate if direction == "h2d" else self._d2h.rate
        )

    def mmio_write(self) -> Event:
        """Posted register write from the host."""
        return self.env.timeout(self.mmio_latency)

    def mmio_read(self) -> Event:
        """Non-posted register read (round trip)."""
        return self.env.timeout(self.mmio_latency)

    def __repr__(self) -> str:
        return f"<PcieLink {self.name!r} {self._h2d.rate / 1e9:.0f} GB/s>"
