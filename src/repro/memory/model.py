"""Capacity-tracked memories with bandwidth/latency port models.

The CCLO "manages buffers in FPGA memory (HBM, DDR, BRAM)" (§4.4); eager
Rx buffers, staged collectives and DLRM embedding tables all live in these.
Reads and writes occupy the memory port (a serializing byte-pipe) and pay a
fixed access latency, so copy costs — the heart of the eager-vs-rendezvous
trade-off — fall out of the model instead of being hard-coded.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError, PlatformError
from repro.sim import BandwidthResource, Environment, Event
from repro import units


@dataclass(frozen=True)
class Allocation:
    """A named region inside a :class:`Memory`."""

    memory: "Memory"
    offset: int
    nbytes: int
    handle: int

    @property
    def end(self) -> int:
        return self.offset + self.nbytes


class Memory:
    """One memory with a shared read/write port.

    Args:
        env: simulation environment.
        capacity: bytes available to the allocator.
        bandwidth: port bandwidth in bytes/s.
        access_latency: fixed latency per access in seconds.
        name: for tracing and error messages.
    """

    def __init__(
        self,
        env: Environment,
        capacity: int,
        bandwidth: float,
        access_latency: float = 0.0,
        name: str = "mem",
    ):
        if capacity <= 0:
            raise ConfigurationError(f"memory capacity must be positive: {capacity}")
        self.env = env
        self.capacity = capacity
        self.access_latency = access_latency
        self.name = name
        self._port = BandwidthResource(env, bandwidth, name=f"{name}.port")
        self._allocations: Dict[int, Allocation] = {}
        self._next_offset = 0
        self._freed_bytes = 0
        self._handles = itertools.count(1)

    @property
    def allocated_bytes(self) -> int:
        return sum(a.nbytes for a in self._allocations.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.allocated_bytes

    @property
    def bytes_accessed(self) -> int:
        return self._port.bytes_moved

    def allocate(self, nbytes: int) -> Allocation:
        """Reserve *nbytes*; raises :class:`PlatformError` when exhausted."""
        if nbytes <= 0:
            raise ConfigurationError(f"allocation size must be positive: {nbytes}")
        if nbytes > self.free_bytes:
            raise PlatformError(
                f"{self.name}: out of memory "
                f"(want {nbytes}, free {self.free_bytes} of {self.capacity})"
            )
        if self._next_offset + nbytes > self.capacity:
            # Bump pointer wrapped: compact (we only model capacity, not
            # fragmentation, which is a software-allocator concern).
            self._next_offset = self.allocated_bytes
        alloc = Allocation(self, self._next_offset, nbytes, next(self._handles))
        self._next_offset += nbytes
        self._allocations[alloc.handle] = alloc
        return alloc

    def free(self, alloc: Allocation) -> None:
        if self._allocations.pop(alloc.handle, None) is None:
            raise PlatformError(
                f"{self.name}: double free or foreign allocation {alloc.handle}"
            )
        self._freed_bytes += alloc.nbytes

    def read(self, nbytes: int) -> Event:
        """Event completing when *nbytes* have been read from the port."""
        return self.env.timeout(self.access_delay(nbytes), value=nbytes)

    def write(self, nbytes: int) -> Event:
        """Event completing when *nbytes* have been written via the port."""
        return self.env.timeout(self.access_delay(nbytes), value=nbytes)

    def access_delay(self, nbytes: int) -> float:
        """Reserve the port and return the completion delay from *now*.

        Same reservation as :meth:`read`/:meth:`write` but without an event —
        platforms composing several pipe stages into one completion use this
        to avoid scheduling intermediate events nobody waits on.
        """
        return self._port.reserve(nbytes) + self.access_latency - self.env.now

    def access_time(self, nbytes: int) -> float:
        """Analytic cost of one access if issued now (no reservation)."""
        return self._port.occupancy_delay(nbytes) + self.access_latency

    def __repr__(self) -> str:
        return (
            f"<Memory {self.name!r} {self.allocated_bytes}/{self.capacity}B "
            f"{self._port.rate / units.GIB:.0f} GiB/s>"
        )


def hbm_stack(env: Environment, name: str = "hbm") -> Memory:
    """Alveo-U55C HBM2: 16 GiB, ~460 GB/s aggregate, ~120 ns access."""
    return Memory(
        env,
        capacity=16 * units.GIB,
        bandwidth=460e9,
        access_latency=units.ns(120),
        name=name,
    )


def fpga_ddr(env: Environment, name: str = "ddr") -> Memory:
    """FPGA card DDR4 channel: 16 GiB, ~19 GB/s, ~90 ns access."""
    return Memory(
        env,
        capacity=16 * units.GIB,
        bandwidth=19e9,
        access_latency=units.ns(90),
        name=name,
    )


def host_dram(env: Environment, capacity: int = 256 * units.GIB,
              name: str = "dram") -> Memory:
    """Server DRAM: 256 GiB default, ~100 GB/s, ~85 ns access."""
    return Memory(
        env,
        capacity=capacity,
        bandwidth=100e9,
        access_latency=units.ns(85),
        name=name,
    )


def bram(env: Environment, capacity: int = 8 * units.MIB, name: str = "bram") -> Memory:
    """On-chip BRAM: small, single-cycle at 250 MHz, very wide."""
    return Memory(
        env,
        capacity=capacity,
        bandwidth=1e12,
        access_latency=units.ns(4),
        name=name,
    )
