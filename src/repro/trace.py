"""Execution tracing for debugging and performance analysis.

The paper motivates the simulation platform with shortened "hardware
debugging cycles"; a trace of control-plane and data-plane events is the
tool that makes that true in practice.  Attach a :class:`Tracer` to an
engine and every uC dispatch, DMP instruction, Tx/Rx message and RBM
transaction is recorded with its simulated timestamp.

Usage::

    tracer = Tracer()
    engine.attach_tracer(tracer)
    ... run ...
    print(tracer.summary())
    for ev in tracer.filter(component="dmp"):
        print(ev)
"""

from __future__ import annotations

import csv
import json
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence."""

    time: float
    component: str
    event: str
    detail: tuple = field(default=())

    def detail_dict(self) -> Dict[str, Any]:
        return dict(self.detail)

    def __str__(self) -> str:
        details = " ".join(f"{k}={v}" for k, v in self.detail)
        return f"[{self.time * 1e6:12.3f}us] {self.component}.{self.event} {details}"


class Tracer:
    """Bounded in-memory event recorder.

    At capacity the tracer behaves as a ring buffer: the *oldest* events
    are evicted and ``dropped`` counts the evictions, so the tail of a
    long run — the part debugging actually needs — is always retained.
    """

    #: process-wide eviction count across every tracer instance; the bench
    #: CLI surfaces it in the run summary so a truncated trace is never
    #: mistaken for a complete one.
    total_dropped = 0

    def __init__(self, capacity: int = 100_000):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0

    def record(self, time: float, component: str, event: str,
               **detail: Any) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1  # deque evicts the oldest event on append
            Tracer.total_dropped += 1
        self._events.append(TraceEvent(
            time=time, component=component, event=event,
            detail=tuple(sorted(detail.items())),
        ))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def filter(self, component: Optional[str] = None,
               event: Optional[str] = None) -> List[TraceEvent]:
        """Events matching the given component and/or event name."""
        return [
            ev for ev in self._events
            if (component is None or ev.component == component)
            and (event is None or ev.event == event)
        ]

    def summary(self) -> Dict[str, int]:
        """``{"component.event": count}`` over the retained trace.

        When the ring buffer has evicted events, a ``"tracer.dropped"``
        entry surfaces the truncation so counts are never silently short.
        """
        counts = Counter(f"{ev.component}.{ev.event}" for ev in self._events)
        out = dict(sorted(counts.items()))
        if self.dropped:
            out["tracer.dropped"] = self.dropped
        return out

    def spans(self, component: str, start_event: str, end_event: str,
              with_counts: bool = False):
        """Durations between matched start/end event pairs.

        Pairing is LIFO (an end event closes the *most recent* open
        start), so nested spans report inner-before-outer with correct
        durations — FIFO pairing would invert them.

        With ``with_counts=True`` the return value is
        ``(durations, counts)`` where ``counts`` reports the unmatched
        residue: ``"unclosed"`` start events that never saw an end, and
        ``"unmatched_ends"`` end events whose start was evicted from the
        ring buffer — either nonzero means the trace is truncated and the
        duration list incomplete.
        """
        durations = []
        open_starts: List[float] = []
        unmatched_ends = 0
        for ev in self._events:
            if ev.component != component:
                continue
            if ev.event == start_event:
                open_starts.append(ev.time)
            elif ev.event == end_event:
                if open_starts:
                    durations.append(ev.time - open_starts.pop())
                else:
                    unmatched_ends += 1
        if with_counts:
            return durations, {
                "unclosed": len(open_starts),
                "unmatched_ends": unmatched_ends,
            }
        return durations

    def to_csv(self, path: str) -> int:
        """Dump the trace; returns the number of rows written.

        The detail column is JSON-encoded so values containing ``;`` or
        ``=`` survive a round trip through :meth:`read_csv` (non-JSON
        values are stringified).
        """
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["time_s", "component", "event", "detail"])
            for ev in self._events:
                writer.writerow([
                    f"{ev.time:.9f}", ev.component, ev.event,
                    json.dumps(ev.detail_dict(), sort_keys=True,
                               default=str),
                ])
        return len(self._events)

    @staticmethod
    def read_csv(path: str) -> List[TraceEvent]:
        """Parse a :meth:`to_csv` dump back into trace events."""
        events: List[TraceEvent] = []
        with open(path, newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader, None)
            if header != ["time_s", "component", "event", "detail"]:
                raise ValueError(f"{path}: not a Tracer CSV dump")
            for time_s, component, event, detail in reader:
                events.append(TraceEvent(
                    time=float(time_s), component=component, event=event,
                    detail=tuple(sorted(json.loads(detail).items())),
                ))
        return events

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0
