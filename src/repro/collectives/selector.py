"""Algorithm selection policy: the runtime-tunable Table 1.

| Collective | Eager      | Rendezvous                      |
|------------|------------|---------------------------------|
| Bcast      | One-to-all | One-to-all; Recursive doubling  |
| Reduce     | Ring       | All-to-one; Binary tree         |
| Gather     | Ring       | All-to-one; Binary tree         |
| All-to-all | Linear     | Linear                          |

ACCL+'s selection is deliberately coarse (two thresholds) compared to
software MPI's fine-grained tables — the gap the paper discusses around
Figure 12.  Thresholds live in :class:`AlgorithmParams` and are settable at
runtime via the config memory.
"""

from __future__ import annotations

from repro.cclo.config_mem import AlgorithmParams, CommunicatorConfig
from repro.cclo.microcontroller import CollectiveArgs
from repro.errors import CollectiveError


class AlgorithmSelector:
    """Chooses the firmware algorithm for a collective invocation."""

    def uses_rendezvous(self, args: CollectiveArgs, comm: CommunicatorConfig,
                        params: AlgorithmParams) -> bool:
        """Whether this collective runs in rendezvous mode."""
        if comm.protocol != "rdma":
            return False  # rendezvous needs the RDMA WRITE verb
        if args.protocol is not None:
            return args.protocol == "rndz"
        return args.nbytes > params.eager_max_bytes

    def choose(self, args: CollectiveArgs, comm: CommunicatorConfig,
               params: AlgorithmParams) -> str:
        opcode = args.opcode
        rndz = self.uses_rendezvous(args, comm, params)

        if opcode in ("send", "recv"):
            return "direct"
        if opcode == "bcast":
            if not rndz:
                return "one_to_all"
            if comm.size <= params.bcast_one_to_all_max_ranks:
                return "one_to_all"
            return "recursive_doubling"
        if opcode in ("reduce", "gather"):
            if not rndz:
                return "ring"
            if args.nbytes <= params.tree_threshold_bytes:
                return "all_to_one"
            return "binary_tree"
        if opcode == "scatter":
            return "linear"
        if opcode == "allgather":
            return "ring"
        if opcode == "allreduce":
            if rndz and args.nbytes <= params.tree_threshold_bytes:
                return "reduce_bcast"
            return "ring"
        if opcode == "alltoall":
            return "linear"
        if opcode == "barrier":
            return "dissemination"
        raise CollectiveError(f"no selection policy for opcode {opcode!r}")
