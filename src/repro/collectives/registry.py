"""Stock firmware load-out for a freshly built CCLO."""

from __future__ import annotations

from repro.cclo.microcontroller import FirmwareRegistry
from repro.collectives.allgather import fw_allgather_ring
from repro.collectives.allreduce import (
    fw_allreduce_reduce_bcast,
    fw_allreduce_ring,
)
from repro.collectives.alltoall import fw_alltoall_linear
from repro.collectives.barrier import fw_barrier_dissemination
from repro.collectives.bcast import (
    fw_bcast_one_to_all,
    fw_bcast_recursive_doubling,
    fw_bcast_scatter_allgather,
)
from repro.collectives.gather import (
    fw_gather_all_to_one,
    fw_gather_binary_tree,
    fw_gather_ring,
)
from repro.collectives.reduce import (
    fw_reduce_all_to_one,
    fw_reduce_binary_tree,
    fw_reduce_ring,
)
from repro.collectives.scatter import (
    fw_scatter_binary_tree,
    fw_scatter_linear,
)
from repro.collectives.sendrecv import fw_recv, fw_send


def install_default_firmware(registry: FirmwareRegistry) -> FirmwareRegistry:
    """Load every stock collective into *registry* (Table 1 plus barriers).

    Applications extend the same registry at runtime to deploy new
    collectives without "re-synthesizing" the engine.
    """
    registry.register("send", "direct", fw_send)
    registry.register("recv", "direct", fw_recv)
    registry.register("bcast", "one_to_all", fw_bcast_one_to_all)
    registry.register("bcast", "recursive_doubling",
                      fw_bcast_recursive_doubling)
    registry.register("bcast", "scatter_allgather",
                      fw_bcast_scatter_allgather)
    registry.register("reduce", "ring", fw_reduce_ring)
    registry.register("reduce", "all_to_one", fw_reduce_all_to_one)
    registry.register("reduce", "binary_tree", fw_reduce_binary_tree)
    registry.register("gather", "ring", fw_gather_ring)
    registry.register("gather", "all_to_one", fw_gather_all_to_one)
    registry.register("gather", "binary_tree", fw_gather_binary_tree)
    registry.register("scatter", "linear", fw_scatter_linear)
    registry.register("scatter", "binary_tree", fw_scatter_binary_tree)
    registry.register("allgather", "ring", fw_allgather_ring)
    registry.register("allreduce", "ring", fw_allreduce_ring)
    registry.register("allreduce", "reduce_bcast", fw_allreduce_reduce_bcast)
    registry.register("alltoall", "linear", fw_alltoall_linear)
    registry.register("barrier", "dissemination", fw_barrier_dissemination)
    return registry


_DEFAULT_REGISTRY: FirmwareRegistry = None


def default_firmware_registry() -> FirmwareRegistry:
    """The stock firmware table, built once and shared read-only.

    Engines layer a small per-node :class:`FirmwareRegistry` on top of this
    one (see ``FirmwareRegistry(parent=...)``), so per-node runtime
    registrations stay isolated while the 18 stock entries exist exactly
    once per process instead of once per node.
    """
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        _DEFAULT_REGISTRY = install_default_firmware(FirmwareRegistry())
    return _DEFAULT_REGISTRY
