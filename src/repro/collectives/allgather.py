"""Allgather firmware: ring.

``args.nbytes`` per-rank block; every rank's ``rbuf`` holds ``size * nbytes``
afterwards.  The ring moves one block per step for ``size - 1`` steps — full
bisection use, no root bottleneck.
"""

from __future__ import annotations

from repro.errors import CollectiveError


def fw_allgather_ring(ctx, args):
    if args.sbuf is None or args.rbuf is None:
        raise CollectiveError("allgather requires sbuf and rbuf")
    yield ctx.cost()
    size = ctx.size
    nbytes = args.nbytes
    rank = ctx.rank
    next_rank = (rank + 1) % size
    prev_rank = (rank - 1) % size

    yield ctx.copy(args.sbuf, args.rbuf.view(rank * nbytes, nbytes), nbytes)
    for step in range(size - 1):
        send_idx = (rank - step) % size
        recv_idx = (rank - step - 1) % size
        tag = ctx.tag(step)
        send_ev = ctx.send(next_rank,
                           args.rbuf.view(send_idx * nbytes, nbytes),
                           nbytes, tag)
        recv_ev = ctx.recv(prev_rank,
                           args.rbuf.view(recv_idx * nbytes, nbytes),
                           nbytes, tag)
        yield ctx.wait_all([send_ev, recv_ev])
