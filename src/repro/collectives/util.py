"""Shared firmware helpers: block partitioning and staging."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import CollectiveError

DATAPATH_ALIGN = 64
"""Chunk boundaries align to the 64 B datapath word."""


def block_ranges(total: int, parts: int,
                 align: int = DATAPATH_ALIGN) -> List[Tuple[int, int]]:
    """Split ``total`` bytes into ``parts`` aligned ``(offset, length)`` blocks.

    All blocks except the last are multiples of *align*; tiny totals produce
    leading zero-length blocks (harmless: zero-byte messages are legal).
    """
    if parts <= 0:
        raise CollectiveError(f"cannot split into {parts} blocks")
    if total < 0:
        raise CollectiveError(f"negative total: {total}")
    base = (total // parts) // align * align
    ranges = []
    offset = 0
    for i in range(parts):
        length = base if i < parts - 1 else total - offset
        ranges.append((offset, length))
        offset += length
    return ranges


def scratch_with_dtype(engine, nbytes: int, like_view=None):
    """Allocate scratch carrying a typed array when the reference has one."""
    buf = engine.scratch_alloc(nbytes)
    ref = None if like_view is None else like_view.array
    if ref is not None and nbytes % ref.itemsize == 0:
        buf.array = np.zeros(nbytes // ref.itemsize, dtype=ref.dtype)
    return buf


def stage_contribution(ctx, args):
    """Firmware helper (generator): materialize this rank's contribution.

    Returns ``(view, scratch_buffer_or_None)``; when the contribution comes
    from the kernel stream it is staged into scratch first (collective
    algorithms need random access to it).  Caller frees the scratch.
    """
    if not args.from_stream:
        if args.sbuf is None:
            raise CollectiveError(
                f"{args.opcode}: no source buffer and no stream flag"
            )
        return args.sbuf, None
    scratch = ctx.engine.scratch_alloc(args.nbytes)
    yield ctx.stream_to_memory(scratch.view(), args.nbytes)
    return scratch.view(), scratch
