"""Barrier firmware: dissemination algorithm.

ceil(log2(P)) rounds of zero-byte eager messages; round k pairs rank r with
ranks r +/- 2^k.  After the last round every rank has transitively heard
from every other rank.
"""

from __future__ import annotations


def fw_barrier_dissemination(ctx, args):
    yield ctx.cost()
    size = ctx.size
    if size == 1:
        return
    distance = 1
    round_no = 0
    while distance < size:
        to = (ctx.rank + distance) % size
        frm = (ctx.rank - distance) % size
        tag = ctx.tag(round_no)
        send_ev = ctx.send(to, None, 0, tag, protocol="eager")
        recv_ev = ctx.recv(frm, None, 0, tag, protocol="eager")
        yield ctx.wait_all([send_ev, recv_ev])
        distance <<= 1
        round_no += 1
