"""Fine-grained algorithm auto-tuning (the paper's stated future work).

§5: "While software MPI's approach involves detailed algorithmic tuning,
ACCL+'s flexible design allows for potential future enhancements through
additional fine-grained tuning to further optimize performance."

This module implements that enhancement: :class:`CollectiveAutoTuner`
measures every registered algorithm of a collective over a grid of
(message size, communicator size) points on a scratch cluster, then emits a
:class:`TunedSelector` whose decisions are per-point optimal — the software-
MPI-style decision table, built empirically instead of hard-coded.  Because
algorithm choice is a runtime parameter of the CCLO, the tuned table
deploys without touching the engines.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import CollectiveError
from repro.cclo.config_mem import AlgorithmParams, CommunicatorConfig
from repro.cclo.microcontroller import CollectiveArgs
from repro.collectives.selector import AlgorithmSelector


@dataclass
class TuningPoint:
    """Measurements of every candidate algorithm at one grid point."""

    nbytes: int
    nranks: int
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def best(self) -> str:
        if not self.timings:
            raise CollectiveError("tuning point has no measurements")
        return min(self.timings, key=self.timings.get)

    def regret_of(self, algorithm: str) -> float:
        """Fractional slowdown of *algorithm* vs the best at this point."""
        best = self.timings[self.best]
        return self.timings[algorithm] / best - 1.0


class TunedSelector(AlgorithmSelector):
    """Selector backed by an empirical decision table.

    Lookups snap to the nearest measured grid point (log-scale in size,
    exact-or-nearest in rank count); opcodes without a table fall back to
    the stock Table 1 policy.
    """

    def __init__(self, tables: Dict[str, List[TuningPoint]]):
        self._tables: Dict[str, Dict[int, List[TuningPoint]]] = {}
        for opcode, points in tables.items():
            by_ranks: Dict[int, List[TuningPoint]] = {}
            for point in points:
                by_ranks.setdefault(point.nranks, []).append(point)
            for plist in by_ranks.values():
                plist.sort(key=lambda p: p.nbytes)
            self._tables[opcode] = by_ranks

    def choose(self, args: CollectiveArgs, comm: CommunicatorConfig,
               params: AlgorithmParams) -> str:
        by_ranks = self._tables.get(args.opcode)
        if not by_ranks:
            return super().choose(args, comm, params)
        ranks = min(by_ranks, key=lambda n: abs(n - comm.size))
        points = by_ranks[ranks]
        sizes = [p.nbytes for p in points]
        idx = bisect.bisect_left(sizes, args.nbytes)
        candidates = []
        if idx < len(points):
            candidates.append(points[idx])
        if idx > 0:
            candidates.append(points[idx - 1])
        nearest = min(
            candidates,
            key=lambda p: abs(_log2(p.nbytes) - _log2(max(1, args.nbytes))),
        )
        return nearest.best


def _log2(value: int) -> float:
    import math

    return math.log2(max(1, value))


class CollectiveAutoTuner:
    """Measures algorithms on scratch clusters and builds a TunedSelector."""

    def __init__(
        self,
        measure: Callable[[str, str, int, int], float],
        algorithms: Dict[str, Sequence[str]],
    ):
        """``measure(opcode, algorithm, nbytes, nranks) -> seconds``;
        ``algorithms`` maps each opcode to its candidate algorithm names."""
        self._measure = measure
        self._algorithms = dict(algorithms)
        self.tables: Dict[str, List[TuningPoint]] = {}

    def tune(self, opcode: str, sizes: Sequence[int],
             rank_counts: Sequence[int]) -> List[TuningPoint]:
        """Measure the full grid for one collective."""
        candidates = self._algorithms.get(opcode)
        if not candidates:
            raise CollectiveError(f"no candidate algorithms for {opcode!r}")
        points = []
        for nranks in rank_counts:
            for nbytes in sizes:
                point = TuningPoint(nbytes=nbytes, nranks=nranks)
                for algorithm in candidates:
                    point.timings[algorithm] = self._measure(
                        opcode, algorithm, nbytes, nranks)
                points.append(point)
        self.tables.setdefault(opcode, []).extend(points)
        return points

    def build_selector(self) -> TunedSelector:
        if not self.tables:
            raise CollectiveError("tune() before building a selector")
        return TunedSelector(self.tables)

    def max_stock_regret(self, opcode: str,
                         params: Optional[AlgorithmParams] = None) -> float:
        """Worst-case regret of the stock Table 1 policy over the grid."""
        params = params or AlgorithmParams()
        stock = AlgorithmSelector()
        worst = 0.0
        for point in self.tables.get(opcode, []):
            comm = CommunicatorConfig(
                0, 0, list(range(point.nranks)), protocol="rdma")
            pick = stock.choose(
                CollectiveArgs(opcode=opcode, nbytes=point.nbytes),
                comm, params)
            if pick in point.timings:
                worst = max(worst, point.regret_of(pick))
        return worst
