"""Gather firmware: all-to-one, ring (chain), binomial tree (Table 1).

``args.nbytes`` is the per-rank block size; rank r's block ends up at byte
offset ``r * nbytes`` of the root's ``rbuf``.
"""

from __future__ import annotations

from repro.errors import CollectiveError
from repro.collectives.util import scratch_with_dtype


def _check(ctx, args):
    if ctx.rank == args.root and args.rbuf is None:
        raise CollectiveError("gather root requires rbuf")
    if args.sbuf is None:
        raise CollectiveError("gather requires sbuf on every rank")


def fw_gather_all_to_one(ctx, args):
    """Every rank sends its block straight to the root."""
    _check(ctx, args)
    yield ctx.cost()
    tag = ctx.tag(0)
    nbytes = args.nbytes
    if ctx.rank != args.root:
        yield ctx.send(args.root, args.sbuf, nbytes, tag)
        return
    pending = [ctx.copy(args.sbuf, args.rbuf.view(args.root * nbytes, nbytes),
                        nbytes)]
    # Receives land in disjoint rbuf blocks, so they may overlap freely.
    for src in range(ctx.size):
        if src == args.root:
            continue
        dest = args.rbuf.view(src * nbytes, nbytes)
        pending.append(ctx.recv(src, dest, nbytes, tag))
    yield ctx.wait_all(pending)


def fw_gather_ring(ctx, args):
    """Chain gather: blocks relay toward the root, growing at every hop.

    One neighbor link per rank (the eager-mode choice), at the cost of
    moving O(P) blocks over the last hop.
    """
    _check(ctx, args)
    yield ctx.cost()
    size = ctx.size
    nbytes = args.nbytes
    position = (ctx.rank - args.root) % size
    tag = ctx.tag(0)

    if position == size - 1:
        # End of the chain: only my own block moves.
        downstream = (ctx.rank - 1) % size
        yield ctx.send(downstream, args.sbuf, nbytes, tag)
        return

    blocks_from_upstream = size - 1 - position
    if position == 0:
        # Root: own block into place, then the chain's aggregate.
        own = ctx.copy(args.sbuf, args.rbuf.view(args.root * nbytes, nbytes),
                       nbytes)
        scratch = scratch_with_dtype(
            ctx.engine, blocks_from_upstream * nbytes, args.sbuf
        )
        try:
            upstream = (ctx.rank + 1) % size
            yield ctx.recv(upstream, scratch.view(),
                           blocks_from_upstream * nbytes, tag)
            # Unpack relative blocks 1..size-1 into rank-indexed slots.
            unpacks = []
            for q in range(1, size):
                rank_q = (args.root + q) % size
                unpacks.append(ctx.copy(
                    scratch.view((q - 1) * nbytes, nbytes),
                    args.rbuf.view(rank_q * nbytes, nbytes),
                    nbytes,
                ))
            unpacks.append(own)
            yield ctx.wait_all(unpacks)
        finally:
            ctx.engine.scratch_free(scratch)
        return

    # Middle of the chain: prepend my block to everything from upstream.
    scratch = scratch_with_dtype(
        ctx.engine, (blocks_from_upstream + 1) * nbytes, args.sbuf
    )
    try:
        own = ctx.copy(args.sbuf, scratch.view(0, nbytes), nbytes)
        upstream = (ctx.rank + 1) % size
        yield ctx.recv(upstream, scratch.view(nbytes),
                       blocks_from_upstream * nbytes, tag)
        yield own
        downstream = (ctx.rank - 1) % size
        yield ctx.send(downstream, scratch.view(),
                       (blocks_from_upstream + 1) * nbytes, tag)
    finally:
        ctx.engine.scratch_free(scratch)


def fw_gather_binary_tree(ctx, args):
    """Binomial-tree gather (rendezvous, large blocks): log2(P) levels.

    Subtrees aggregate in relative-rank order and forward upward; the root
    finally unpacks relative order into rank order.
    """
    _check(ctx, args)
    yield ctx.cost()
    size = ctx.size
    nbytes = args.nbytes
    relative = (ctx.rank - args.root) % size
    tag = ctx.tag(0)

    # Aggregation buffer ordered by relative rank; my block sits at 0.
    held = scratch_with_dtype(ctx.engine, size * nbytes, args.sbuf)
    try:
        yield ctx.copy(args.sbuf, held.view(0, nbytes), nbytes)
        my_blocks = 1
        mask = 1
        while mask < size:
            if relative & mask:
                parent = ((relative - mask) + args.root) % size
                yield ctx.send(parent, held.view(0, my_blocks * nbytes),
                               my_blocks * nbytes, tag)
                break
            child_rel = relative | mask
            if child_rel < size:
                child = (child_rel + args.root) % size
                child_blocks = min(mask, size - child_rel)
                yield ctx.recv(child,
                               held.view(mask * nbytes, child_blocks * nbytes),
                               child_blocks * nbytes, tag)
                my_blocks = mask + child_blocks
            mask <<= 1

        if relative == 0:
            unpacks = []
            for q in range(size):
                rank_q = (args.root + q) % size
                unpacks.append(ctx.copy(
                    held.view(q * nbytes, nbytes),
                    args.rbuf.view(rank_q * nbytes, nbytes),
                    nbytes,
                ))
            yield ctx.wait_all(unpacks)
    finally:
        ctx.engine.scratch_free(held)
