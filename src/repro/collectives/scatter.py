"""Scatter firmware: linear and binomial tree.

``args.nbytes`` is the per-rank block; the root's ``sbuf`` holds
``size * nbytes`` and each rank's ``rbuf`` receives its own block.
"""

from __future__ import annotations

from repro.errors import CollectiveError
from repro.collectives.util import scratch_with_dtype


def _check(ctx, args):
    if ctx.rank == args.root and args.sbuf is None:
        raise CollectiveError("scatter root requires sbuf")
    if args.rbuf is None:
        raise CollectiveError("scatter requires rbuf on every rank")


def fw_scatter_linear(ctx, args):
    """Root sends every rank its block directly."""
    _check(ctx, args)
    yield ctx.cost()
    tag = ctx.tag(0)
    nbytes = args.nbytes
    if ctx.rank != args.root:
        yield ctx.recv(args.root, args.rbuf, nbytes, tag)
        return
    pending = [ctx.copy(args.sbuf.view(args.root * nbytes, nbytes), args.rbuf,
                        nbytes)]
    for dst in range(ctx.size):
        if dst == args.root:
            continue
        pending.append(
            ctx.send(dst, args.sbuf.view(dst * nbytes, nbytes), nbytes, tag)
        )
    yield ctx.wait_all(pending)


def fw_scatter_binary_tree(ctx, args):
    """Binomial-tree scatter: halves of the block set fan down the tree."""
    _check(ctx, args)
    yield ctx.cost()
    size = ctx.size
    nbytes = args.nbytes
    relative = (ctx.rank - args.root) % size
    tag = ctx.tag(0)

    # Staging buffer in relative order covering exactly my subtree's blocks.
    if relative == 0:
        my_blocks = size
        recv_mask = 1
        while recv_mask < size:
            recv_mask <<= 1
        held = scratch_with_dtype(ctx.engine, size * nbytes, args.sbuf)
        packs = [
            ctx.copy(args.sbuf.view(((args.root + q) % size) * nbytes, nbytes),
                     held.view(q * nbytes, nbytes), nbytes)
            for q in range(size)
        ]
        yield ctx.wait_all(packs)
    else:
        recv_mask = relative & -relative  # lowest set bit = subtree stride
        my_blocks = min(recv_mask, size - relative)
        held = ctx.engine.scratch_alloc(my_blocks * nbytes)
        parent = ((relative - recv_mask) + args.root) % size
        # Whole-buffer receive so the scratch materializes functionally.
        yield ctx.recv(parent, held.view(), my_blocks * nbytes, tag)

    try:
        # Fan the upper halves down to children, sequentially with the
        # largest subtree first (see the bcast firmware for why).
        mask = recv_mask >> 1
        while mask > 0:
            child_rel = relative + mask
            if child_rel < size and mask < my_blocks:
                child = (child_rel + args.root) % size
                child_blocks = min(mask, my_blocks - mask)
                yield ctx.send(
                    child, held.view(mask * nbytes, child_blocks * nbytes),
                    child_blocks * nbytes, tag,
                )
            mask >>= 1
        yield ctx.copy(held.view(0, nbytes), args.rbuf, nbytes)
    finally:
        ctx.engine.scratch_free(held)
