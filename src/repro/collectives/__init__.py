"""Collective algorithms as uC firmware (§4.4.4).

"Collectives are realized by specifying a communication pattern as a C
function in uC firmware, and then executing this pattern through
instructions in DMP and Tx/Rx System on each FPGA in the communicator."

Each algorithm here is a generator taking ``(ctx, args)`` — the Python
analogue of those C firmware functions.  :func:`install_default_firmware`
loads the stock set into a registry; applications can register their own
collectives at runtime, the paper's no-resynthesis extensibility claim
(see ``examples/custom_collective.py``).

Algorithm selection follows Table 1 and is runtime-tunable through
:class:`~repro.cclo.config_mem.AlgorithmParams`.
"""

from repro.collectives.selector import AlgorithmSelector
from repro.collectives.registry import install_default_firmware

__all__ = ["AlgorithmSelector", "install_default_firmware"]
