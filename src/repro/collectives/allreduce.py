"""Allreduce firmware: ring (reduce-scatter + allgather) and reduce+bcast."""

from __future__ import annotations

import dataclasses

from repro.errors import CollectiveError
from repro.collectives.util import block_ranges
from repro.collectives import bcast as _bcast
from repro.collectives import reduce as _reduce


def fw_allreduce_ring(ctx, args):
    """Bandwidth-optimal ring: reduce-scatter then allgather.

    Each rank moves ~2 * nbytes regardless of communicator size; the
    workhorse for large messages.
    """
    if args.sbuf is None or args.rbuf is None:
        raise CollectiveError("allreduce requires sbuf and rbuf")
    yield ctx.cost()
    size = ctx.size
    rank = ctx.rank
    next_rank = (rank + 1) % size
    prev_rank = (rank - 1) % size
    blocks = block_ranges(args.nbytes, size)

    def block_view(idx):
        offset, length = blocks[idx]
        return args.rbuf.view(offset, length), length

    # Accumulate in rbuf so sbuf stays intact.
    yield ctx.copy(args.sbuf, args.rbuf, args.nbytes)

    # Phase 1: reduce-scatter — after size-1 steps each rank owns the
    # fully-reduced block (rank + 1) % size.
    for step in range(size - 1):
        send_view, send_len = block_view((rank - step) % size)
        recv_view, recv_len = block_view((rank - step - 1) % size)
        tag = ctx.tag(step)
        pending = []
        if send_len > 0:
            pending.append(ctx.send(next_rank, send_view, send_len, tag))
        if recv_len > 0:
            pending.append(ctx.recv_reduce(prev_rank, recv_view, recv_len,
                                           tag, args.func))
        if pending:
            yield ctx.wait_all(pending)

    # Phase 2: allgather the reduced blocks around the ring.
    for step in range(size - 1):
        send_view, send_len = block_view((rank + 1 - step) % size)
        recv_view, recv_len = block_view((rank - step) % size)
        tag = ctx.tag(100 + step)
        pending = []
        if send_len > 0:
            pending.append(ctx.send(next_rank, send_view, send_len, tag))
        if recv_len > 0:
            pending.append(ctx.recv(prev_rank, recv_view, recv_len, tag))
        if pending:
            yield ctx.wait_all(pending)


def fw_allreduce_reduce_bcast(ctx, args):
    """Latency-lean composition for small messages: reduce then bcast."""
    if args.sbuf is None or args.rbuf is None:
        raise CollectiveError("allreduce requires sbuf and rbuf")
    yield ctx.cost()
    params = ctx.uc.config_mem.params

    reduce_args = dataclasses.replace(
        args, opcode="reduce", tag=ctx.tag(0), from_stream=False,
        to_stream=False,
    )
    if args.nbytes <= params.tree_threshold_bytes:
        reduce_fw = _reduce.fw_reduce_all_to_one
    else:
        reduce_fw = _reduce.fw_reduce_binary_tree
    sub_ctx = type(ctx)(ctx.uc, reduce_args)
    yield ctx.env.process(reduce_fw(sub_ctx, reduce_args))

    bcast_args = dataclasses.replace(
        args, opcode="bcast", tag=ctx.tag(500), sbuf=None,
        from_stream=False, to_stream=False,
    )
    if ctx.size <= params.bcast_one_to_all_max_ranks:
        bcast_fw = _bcast.fw_bcast_one_to_all
    else:
        bcast_fw = _bcast.fw_bcast_recursive_doubling
    sub_ctx = type(ctx)(ctx.uc, bcast_args)
    yield ctx.env.process(bcast_fw(sub_ctx, bcast_args))
