"""All-to-all firmware: linear (Table 1's only entry for this collective).

Personalized exchange: rank r's block for rank d sits at ``sbuf[d]``; the
block received from rank s lands at ``rbuf[s]``.  Transfers are issued
concurrently (the isend/irecv + waitall shape), stride-staggered so every
iteration pairs each sender with a distinct receiver.
"""

from __future__ import annotations

from repro.errors import CollectiveError


def fw_alltoall_linear(ctx, args):
    if args.sbuf is None or args.rbuf is None:
        raise CollectiveError("alltoall requires sbuf and rbuf")
    yield ctx.cost()
    size = ctx.size
    rank = ctx.rank
    nbytes = args.nbytes

    pending = [ctx.copy(args.sbuf.view(rank * nbytes, nbytes),
                        args.rbuf.view(rank * nbytes, nbytes), nbytes)]
    for stride in range(1, size):
        dst = (rank + stride) % size
        src = (rank - stride) % size
        tag = ctx.tag(stride)
        pending.append(ctx.send(dst, args.sbuf.view(dst * nbytes, nbytes),
                                nbytes, tag))
        pending.append(ctx.recv(src, args.rbuf.view(src * nbytes, nbytes),
                                nbytes, tag))
    yield ctx.wait_all(pending)
