"""Broadcast firmware: one-to-all and recursive doubling (Table 1).

The broadcast buffer is ``args.rbuf`` on every rank (MPI convention: the
root reads it, everyone else receives into it).
"""

from __future__ import annotations

from repro.errors import CollectiveError


def _bcast_buffer(ctx, args):
    buf = args.rbuf if args.rbuf is not None else args.sbuf
    if buf is None:
        raise CollectiveError("bcast requires a buffer")
    return buf


def fw_bcast_one_to_all(ctx, args):
    """Root sends to every other rank directly.

    Simple and handshake-free — the eager default, and the rendezvous
    choice at small rank counts where the root's uplink is not yet the
    bottleneck.
    """
    buf = _bcast_buffer(ctx, args)
    yield ctx.cost()
    if ctx.rank == args.root:
        pending = [
            ctx.send(dst, buf, args.nbytes, ctx.tag(0))
            for dst in range(ctx.size)
            if dst != args.root
        ]
        if pending:
            yield ctx.wait_all(pending)
    else:
        yield ctx.recv(args.root, buf, args.nbytes, ctx.tag(0))


def fw_bcast_recursive_doubling(ctx, args):
    """Binomial-tree dissemination: log2(P) rounds, root never bottlenecked.

    Chosen in rendezvous mode at larger rank counts "such that the data
    transmission is not bottlenecked at the root rank" (§4.4.4).
    """
    buf = _bcast_buffer(ctx, args)
    yield ctx.cost()
    size = ctx.size
    relative = (ctx.rank - args.root) % size

    # Phase 1: wait for the block from the parent.  The root never breaks
    # out, leaving mask at the first power of two >= size, which is exactly
    # where its send schedule starts.
    mask = 1
    while mask < size:
        if relative & mask:
            parent = (relative - mask + args.root) % size
            yield ctx.recv(parent, buf, args.nbytes, ctx.tag(0))
            break
        mask <<= 1

    # Phase 2: forward to children at decreasing strides.  Sends go out
    # *sequentially*, largest subtree first: the uplink serializes the bytes
    # anyway, and interleaving the copies would delay the deepest subtree's
    # head start — the whole point of the descending-mask order.
    mask >>= 1
    while mask > 0:
        if relative + mask < size:
            child = (relative + mask + args.root) % size
            yield ctx.send(child, buf, args.nbytes, ctx.tag(0))
        mask >>= 1


def fw_bcast_scatter_allgather(ctx, args):
    """Bandwidth-optimal large-message broadcast (van de Geijn).

    The root scatters message blocks, then a ring allgather circulates them:
    every rank moves ~2 * nbytes total instead of the tree's log(P) * nbytes
    at the root.  Not part of the Table 1 default policy — it is the kind of
    algorithm the runtime-tunable selector (or the auto-tuner) can enable at
    large sizes, closing the gap to software MPI's finest tables.
    """
    from repro.collectives.util import block_ranges

    buf = _bcast_buffer(ctx, args)
    yield ctx.cost()
    size = ctx.size
    if size == 1:
        return
    blocks = block_ranges(args.nbytes, size)

    def block_view(q):
        offset, length = blocks[q]
        return buf.view(offset, length), length

    relative = (ctx.rank - args.root) % size

    # Phase 1: the root scatters block q to relative rank q (linear; the
    # scatter is a 1/P share of the traffic, so its shape barely matters).
    if relative == 0:
        for q in range(1, size):
            view, length = block_view(q)
            if length:
                yield ctx.send((args.root + q) % size, view, length,
                               ctx.tag(q))
    else:
        view, length = block_view(relative)
        if length:
            yield ctx.recv(args.root, view, length, ctx.tag(relative))

    # Phase 2: ring allgather of the blocks.
    next_rank = (ctx.rank + 1) % size
    prev_rank = (ctx.rank - 1) % size
    for step in range(size - 1):
        send_view, send_len = block_view((relative - step) % size)
        recv_view, recv_len = block_view((relative - step - 1) % size)
        tag = ctx.tag(100 + step)
        pending = []
        if send_len:
            pending.append(ctx.send(next_rank, send_view, send_len, tag))
        if recv_len:
            pending.append(ctx.recv(prev_rank, recv_view, recv_len, tag))
        if pending:
            yield ctx.wait_all(pending)
