"""Point-to-point firmware: send and recv."""

from __future__ import annotations

from repro.errors import CollectiveError


def fw_send(ctx, args):
    """Send ``nbytes`` to ``args.peer`` from a buffer or the kernel stream."""
    if args.peer < 0:
        raise CollectiveError("send requires a peer rank")
    yield ctx.cost()
    source = None if args.from_stream else args.sbuf
    yield ctx.send(args.peer, source, args.nbytes, ctx.tag(0),
                   codec=args.extra.get("codec"))


def fw_recv(ctx, args):
    """Receive ``nbytes`` from ``args.peer`` into a buffer or the stream."""
    if args.peer < 0:
        raise CollectiveError("recv requires a peer rank")
    yield ctx.cost()
    dest = None if args.to_stream else args.rbuf
    yield ctx.recv(args.peer, dest, args.nbytes, ctx.tag(0),
                   codec=args.extra.get("codec"))
