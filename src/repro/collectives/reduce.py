"""Reduce firmware: ring, all-to-one, and binary (binomial) tree (Table 1).

Conventions: ``args.sbuf`` is each rank's contribution (or the kernel stream
when ``from_stream``); ``args.rbuf`` receives the result at the root (or the
stream when ``to_stream``).  The reduction operator is ``args.func``.

All intermediate accumulation happens in FPGA device memory — the paper's
"ACCL+ utilizes FPGA memory for all intermediate reduction data structures"
— so a host-resident result buffer is touched exactly twice over PCIe (one
read of the contribution, one write of the final result), never per fold.
"""

from __future__ import annotations

from repro.errors import CollectiveError
from repro.collectives.util import stage_contribution
from repro.platform.base import BufferLocation


def _finish_root(ctx, args, acc_view):
    """Deliver the final accumulation to rbuf or the kernel stream."""
    if args.to_stream:
        yield ctx.memory_to_stream(acc_view, args.nbytes)
    elif args.rbuf is not None:
        yield ctx.copy(acc_view, args.rbuf, args.nbytes)
    else:
        raise CollectiveError("reduce root requires rbuf or to_stream")


def fw_reduce_all_to_one(ctx, args):
    """Everyone sends to the root; the root folds arrivals sequentially.

    Minimal hop count — best at small sizes; at large sizes the root's
    downlink in-cast makes the tree preferable (§4.4.4, Fig 12).  Receives
    are pre-posted in parallel into per-source Rx scratch (so rendezvous
    handshakes overlap); only the folds themselves serialize.
    """
    yield ctx.cost()
    tag = ctx.tag(0)
    if ctx.rank != args.root:
        source = None if args.from_stream else args.sbuf
        yield ctx.send(args.root, source, args.nbytes, tag)
        return

    sources = [src for src in range(ctx.size) if src != args.root]
    eager = ctx.protocol_for(args.nbytes) == "eager"
    # Accumulate directly in a device-resident result buffer; otherwise in
    # scratch with one final copy out.
    acc_is_rbuf = (
        args.rbuf is not None
        and args.rbuf.buffer.location is BufferLocation.DEVICE
        and not args.to_stream
    )
    acc = args.rbuf.buffer if acc_is_rbuf else ctx.engine.scratch_alloc(
        args.nbytes)
    acc_view = args.rbuf if acc_is_rbuf else acc.view()
    # A root invoked without sbuf/stream contributes nothing (the DLRM
    # reduction root, §6.1): the first arrival then lands straight in acc.
    has_contribution = args.from_stream or args.sbuf is not None
    staged = None
    slots = {}
    if not eager:
        slots = {src: ctx.engine.scratch_alloc(args.nbytes)
                 for src in sources}
    try:
        if has_contribution:
            contribution, staged = yield from stage_contribution(ctx, args)
            yield ctx.copy(contribution, acc_view, args.nbytes)
        elif sources:
            first = sources.pop(0)
            yield ctx.recv(first, acc_view, args.nbytes, tag)
        if eager:
            # Arrivals buffer in the RBM regardless, so the fused
            # network->plugin->memory microcode folds each contribution in a
            # single datapath pass.
            for src in sources:
                yield ctx.recv_reduce(src, acc_view, args.nbytes, tag,
                                      args.func)
        else:
            # Rendezvous: pre-post all receives so the handshakes overlap;
            # fold from the landing slots as each WRITE completes.
            arrivals = {
                src: ctx.recv(src, slots[src].view(), args.nbytes, tag)
                for src in sources
            }
            for src in sources:
                yield arrivals[src]
                yield ctx.reduce_local(args.func, slots[src].view(),
                                       acc_view, acc_view, args.nbytes)
        if not acc_is_rbuf:
            yield from _finish_root(ctx, args, acc_view)
    finally:
        if staged is not None:
            ctx.engine.scratch_free(staged)
        for slot in slots.values():
            ctx.engine.scratch_free(slot)
        if not acc_is_rbuf:
            ctx.engine.scratch_free(acc)


def fw_reduce_ring(ctx, args):
    """Chain reduction around the ring ending at the root (eager default).

    Rank at chain position p receives the running partial from position
    p-1, folds its own contribution, and forwards; the root terminates the
    chain.  One message per rank, no in-cast, but latency grows linearly
    with the communicator size.
    """
    yield ctx.cost()
    size = ctx.size
    position = (ctx.rank - args.root - 1) % size  # root sits at size-1
    next_rank = (ctx.rank + 1) % size
    prev_rank = (ctx.rank - 1) % size
    tag = ctx.tag(0)

    if position == 0:
        source = None if args.from_stream else args.sbuf
        yield ctx.send(next_rank, source, args.nbytes, tag)
        return

    contribution, staged = yield from stage_contribution(ctx, args)
    acc = ctx.engine.scratch_alloc(args.nbytes)
    try:
        yield ctx.copy(contribution, acc.view(), args.nbytes)
        yield ctx.recv_reduce(prev_rank, acc.view(), args.nbytes, tag,
                              args.func)
        if position == size - 1:  # the root terminates the chain
            yield from _finish_root(ctx, args, acc.view())
        else:
            yield ctx.send(next_rank, acc.view(), args.nbytes, tag)
    finally:
        if staged is not None:
            ctx.engine.scratch_free(staged)
        ctx.engine.scratch_free(acc)


def fw_reduce_binary_tree(ctx, args):
    """Binomial-tree reduction toward the root (rendezvous, large messages).

    log2(P) levels; each parent folds children before forwarding upward, so
    no link ever carries more than one message per level — this is what
    avoids the all-to-one in-cast at 128 KiB in Figure 12.
    """
    yield ctx.cost()
    size = ctx.size
    relative = (ctx.rank - args.root) % size
    tag = ctx.tag(0)

    contribution, staged = yield from stage_contribution(ctx, args)
    acc = ctx.engine.scratch_alloc(args.nbytes)
    try:
        yield ctx.copy(contribution, acc.view(), args.nbytes)
        mask = 1
        while mask < size:
            if relative & mask:
                parent = (relative - mask + args.root) % size
                yield ctx.send(parent, acc.view(), args.nbytes, tag)
                break
            child_rel = relative | mask
            if child_rel < size:
                child = (child_rel + args.root) % size
                yield ctx.recv_reduce(child, acc.view(), args.nbytes, tag,
                                      args.func)
            mask <<= 1
        if relative == 0:
            yield from _finish_root(ctx, args, acc.view())
    finally:
        if staged is not None:
            ctx.engine.scratch_free(staged)
        ctx.engine.scratch_free(acc)
