"""Legacy-path shim: metadata lives in pyproject.toml.

Kept so ``pip install -e .`` works in offline environments whose setuptools
lacks PEP 660 editable-wheel support (no ``wheel`` package available).
"""

from setuptools import setup

setup()
